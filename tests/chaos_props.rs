//! The chaos battery: deterministic fault injection (`cogra-faults`)
//! driven through the supervised runtime, pinning the fault-tolerance
//! contracts end to end. Compiled only with `--features faults`:
//!
//! ```text
//! cargo test -p cogra --test chaos_props --features faults
//! ```
//!
//! Contracts pinned here:
//!
//! * **Restart ≡ no-fault run** — a shard worker killed at any
//!   failpoint (batch / drain / finish / snapshot, any shard, any hit
//!   count) under `FailurePolicy::Restart` is respawned from its last
//!   drain baseline + journal, and the session's emitted results are
//!   **byte-identical** to an uninterrupted run (stats/peak are
//!   explicitly NOT part of the contract — replay re-probes).
//! * **Degrade conserves the event accounting** — after a quarantine,
//!   `routed_items == Σ live shard_events + dropped_events`, and the
//!   losses surface through `SessionRun`.
//! * **Fail is sticky and typed** — `ingest_csv` returns
//!   `IngestError::WorkerFailed`, further input is refused, a failed or
//!   degraded session refuses to checkpoint.
//! * **A crash mid-snapshot never yields a readable-but-wrong file** —
//!   `write_atomic` killed during the write or the rename leaves the
//!   previous snapshot byte-intact (and the leftover `.tmp` of a
//!   half-write does not restore), from the library *and* from the CLI.
//!
//! Every test serializes on one mutex: the fault registry is process
//! global, and these tests would otherwise arm each other's failpoints.

#![cfg(feature = "faults")]

use std::path::PathBuf;
use std::process::Command;
use std::sync::{Arc, Mutex, MutexGuard, Once, OnceLock};

use cogra::core::{PoolConfig, QueryRuntime, StreamingPool};
use cogra::prelude::*;
use cogra_checkpoint::write_atomic;
use cogra_faults::{SeedSequence, Trigger};
use proptest::prelude::*;

/// One grouped Kleene query — shardable, so every worker-count knob and
/// failpoint site is exercised.
const QUERY: &str = "RETURN g, COUNT(*), SUM(A.v) PATTERN SEQ(A+, B) SEMANTICS ANY \
                     GROUP-BY g WITHIN 10 SLIDE 5";

fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    r.register_type("A", vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
    r.register_type("B", vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
    r
}

/// Serialize the whole battery on the process-global fault registry,
/// leaving it clean for the test body. Also quiets the injected panics:
/// every kill below is intentional, and hundreds of backtraces would
/// bury a real failure.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let g = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("injected fault at"));
            if !injected {
                default(info);
            }
        }));
    });
    cogra_faults::reset();
    g
}

/// A deterministic mixed A/B stream: 7 groups, B every third event.
fn build_events(n: usize) -> Vec<Event> {
    let reg = registry();
    let a = reg.id_of("A").unwrap();
    let b = reg.id_of("B").unwrap();
    let mut builder = EventBuilder::new();
    (0..n)
        .map(|i| {
            let ty = if i % 3 == 2 { b } else { a };
            builder.event(
                (i + 1) as u64,
                ty,
                vec![Value::Int((i % 7) as i64), Value::Int((i % 5) as i64)],
            )
        })
        .collect()
}

/// Like [`build_events`], with bounded disorder (each 4-event cell is
/// emitted 0,2,1,3) — repaired exactly by `.slack(2)` or wider.
fn build_disordered_events(n: usize) -> Vec<Event> {
    let mut events = build_events(n);
    for cell in events.chunks_mut(4) {
        if cell.len() == 4 {
            cell.swap(1, 2);
        }
    }
    events
}

/// Drive one session over the stream in chunks — process, drain per
/// chunk, finish — returning the session (for its post-mortem counters)
/// and everything it emitted, in emission order.
fn run_chunked(
    events: &[Event],
    slack: Option<u64>,
    workers: usize,
    batch: usize,
    policy: FailurePolicy,
    chunk: usize,
) -> (Session, Vec<TaggedResult>) {
    let mut builder = Session::builder()
        .query(QUERY)
        .workers(workers)
        .batch_size(batch)
        .on_worker_failure(policy);
    if let Some(s) = slack {
        builder = builder.slack(s);
    }
    let mut session = builder.build(&registry()).expect("query builds");
    let mut out = Vec::new();
    for part in events.chunks(chunk) {
        for e in part {
            session.process(e);
        }
        out.extend(session.drain());
    }
    out.extend(session.finish());
    (session, out)
}

/// The stream as the CSV document `ingest_csv` reads.
fn build_csv(n: usize) -> String {
    let mut s = String::from("type,time,g,v\n");
    for i in 0..n {
        let ty = if i % 3 == 2 { "B" } else { "A" };
        s.push_str(&format!("{ty},{},{},{}\n", i + 1, i % 7, i % 5));
    }
    s
}

/// Self-cleaning scratch directory for snapshot files.
struct TempDir {
    dir: PathBuf,
}

impl TempDir {
    fn new(name: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("cogra-chaos-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir { dir }
    }

    fn path(&self, file: &str) -> String {
        self.dir.join(file).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

// ---------------------------------------------------------------------
// Restart ≡ no-fault run
// ---------------------------------------------------------------------

/// Kill one worker at every failpoint kind, on two shards, at different
/// hit counts: the Restart recovery must reproduce the no-fault run's
/// emitted rows byte-for-byte, leave no sticky failure and no
/// quarantine. Each grid point also asserts the failpoint actually
/// fired — a schedule that never reaches its site proves nothing.
#[test]
fn restart_recovers_byte_identically_across_sites() {
    let _g = guard();
    let events = build_events(240);
    let (baseline_session, baseline) = run_chunked(&events, None, 4, 7, FailurePolicy::Fail, 31);
    assert!(!baseline.is_empty());
    for shard in [0usize, 1] {
        for (kind, hit) in [("batch", 1), ("batch", 3), ("drain", 2), ("finish", 1)] {
            cogra_faults::reset();
            let site = format!("worker/{kind}/{shard}");
            cogra_faults::configure(&site, Trigger::OnHit(hit));
            let (session, out) = run_chunked(&events, None, 4, 7, FailurePolicy::Restart, 31);
            assert!(
                cogra_faults::hits(&site) >= hit,
                "failpoint {site} was never reached (hits={})",
                cogra_faults::hits(&site)
            );
            assert!(
                session.worker_failure().is_none(),
                "restart escalated at {site}: {:?}",
                session.worker_failure()
            );
            assert!(session.degraded_shards().is_empty());
            assert_eq!(out, baseline, "divergence after a kill at {site} hit {hit}");
            assert_eq!(session.late_events(), baseline_session.late_events());
        }
    }
}

/// The recovery baseline includes each shard's reorder buffer: a worker
/// killed while `.slack(n)` holds events in flight replays them too.
#[test]
fn restart_replays_the_reorder_buffer_under_slack() {
    let _g = guard();
    let events = build_disordered_events(200);
    let (baseline_session, baseline) = run_chunked(&events, Some(3), 4, 5, FailurePolicy::Fail, 23);
    assert!(!baseline.is_empty());
    for site in ["worker/batch/0", "worker/drain/1"] {
        cogra_faults::reset();
        cogra_faults::configure(site, Trigger::OnHit(2));
        let (session, out) = run_chunked(&events, Some(3), 4, 5, FailurePolicy::Restart, 23);
        assert!(
            cogra_faults::hits(site) >= 2,
            "failpoint {site} never reached"
        );
        assert!(session.worker_failure().is_none());
        assert_eq!(
            out, baseline,
            "divergence after a kill at {site} under slack"
        );
        assert_eq!(session.late_events(), baseline_session.late_events());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomized fault-schedule sweep (with shrinking): one seed derives
    /// the whole schedule — pool shape, chunking, site, shard and hit
    /// count — through `SeedSequence`, so a failing seed replays exactly.
    #[test]
    fn restart_matches_no_fault_run_for_random_schedules(seed in any::<u64>()) {
        let _g = guard();
        let mut seq = SeedSequence::new(seed);
        let workers = 2 + (seq.next_u64() % 3) as usize; // 2..=4
        let batch = 1 + (seq.next_u64() % 12) as usize; // 1..=12
        let chunk = 8 + (seq.next_u64() % 32) as usize; // 8..=39
        let n = 60 + (seq.next_u64() % 160) as usize; // 60..=219
        let kind = ["batch", "drain", "finish"][(seq.next_u64() % 3) as usize];
        let shard = (seq.next_u64() % workers as u64) as usize;
        let hit = seq.next_hit(6);
        let site = format!("worker/{kind}/{shard}");

        let events = build_events(n);
        let (baseline_session, baseline) =
            run_chunked(&events, None, workers, batch, FailurePolicy::Fail, chunk);
        cogra_faults::configure(&site, Trigger::OnHit(hit));
        let (session, out) =
            run_chunked(&events, None, workers, batch, FailurePolicy::Restart, chunk);
        prop_assert!(
            session.worker_failure().is_none(),
            "seed {} escalated at {}: {:?}", seed, site, session.worker_failure()
        );
        prop_assert_eq!(&out, &baseline, "seed {} diverged at {} hit {}", seed, site, hit);
        prop_assert_eq!(session.late_events(), baseline_session.late_events());
    }
}

/// A worker killed *during* `SNAPSHOT` under Restart is respawned and
/// re-asked: the checkpoint still completes, and the snapshot resumes to
/// the same rows as one taken with no fault at the same point.
#[test]
fn snapshot_interrupted_by_a_worker_death_is_retried_under_restart() {
    let _g = guard();
    let events = build_events(160);
    let (head, tail) = events.split_at(100);
    let tmp = TempDir::new("snap-retry");
    let mut paths = Vec::new();
    for (name, site) in [("clean", None), ("killed", Some("worker/snapshot/0"))] {
        cogra_faults::reset();
        let mut session = Session::builder()
            .query(QUERY)
            .workers(4)
            .batch_size(7)
            .on_worker_failure(FailurePolicy::Restart)
            .build(&registry())
            .unwrap();
        for e in head {
            session.process(e);
        }
        let _ = session.drain();
        if let Some(site) = site {
            cogra_faults::configure(site, Trigger::OnHit(1));
        }
        let path = tmp.path(&format!("{name}.cogra"));
        write_atomic(&path, |buf| session.checkpoint(buf)).expect("snapshot completes");
        if let Some(site) = site {
            assert!(
                cogra_faults::hits(site) >= 1,
                "failpoint {site} never reached"
            );
        }
        paths.push(path);
    }
    cogra_faults::reset();
    let mut resumed = Vec::new();
    for path in &paths {
        let bytes = std::fs::read(path).unwrap();
        let mut session = Session::builder()
            .restore(&registry(), &bytes[..])
            .expect("snapshot restores");
        let mut out = Vec::new();
        for e in tail {
            session.process(e);
        }
        out.extend(session.finish());
        resumed.push(out);
    }
    assert!(!resumed[0].is_empty());
    assert_eq!(
        resumed[1], resumed[0],
        "mid-snapshot kill changed the resumed rows"
    );
}

// ---------------------------------------------------------------------
// Degrade: quarantine + conservation
// ---------------------------------------------------------------------

/// The conservation invariant, at the pool: every routed item is either
/// in a live shard's count or in `dropped_events` — nothing vanishes
/// silently when a shard is quarantined.
#[test]
fn degrade_conserves_event_accounting_at_the_pool() {
    let _g = guard();
    let reg = registry();
    let q = cogra::query::parse(QUERY).unwrap();
    let rt = Arc::new(QueryRuntime::new(
        cogra::query::compile(&q, &reg).unwrap(),
        &reg,
    ));
    let events = build_events(240);
    cogra_faults::configure("worker/batch/1", Trigger::OnHit(2));
    let mut pool = StreamingPool::new(
        vec![rt],
        4,
        PoolConfig {
            batch_size: 5,
            slack: None,
            policy: FailurePolicy::Degrade,
        },
    );
    let mut results = Vec::new();
    let mut push = |_q: usize, r: WindowResult| results.push(r);
    for (i, e) in events.iter().enumerate() {
        pool.route(e);
        if i % 40 == 39 {
            pool.drain_into(&mut push);
        }
    }
    pool.finish_into(&mut push);
    assert_eq!(pool.degraded_shards(), vec![1]);
    assert!(pool.failure().is_none(), "Degrade must not fail the pool");
    assert!(
        pool.dropped_events() > 0,
        "a quarantine with no losses proves nothing"
    );
    let live: u64 = pool.shard_events().iter().sum();
    assert_eq!(
        pool.routed_items(),
        live + pool.dropped_events(),
        "conservation violated: {} routed, {} live, {} dropped",
        pool.routed_items(),
        live,
        pool.dropped_events()
    );
    assert!(!results.is_empty(), "live shards must keep emitting");
}

/// The same quarantine, observed from the batch surface: `SessionRun`
/// reports the degraded shard and the losses instead of panicking or
/// silently returning partial rows as if they were complete.
#[test]
fn degrade_quarantines_and_reports_through_session_run() {
    let _g = guard();
    let events = build_events(240);
    cogra_faults::configure("worker/batch/1", Trigger::OnHit(2));
    let run = Session::builder()
        .query(QUERY)
        .workers(4)
        .batch_size(5)
        .on_worker_failure(FailurePolicy::Degrade)
        .build(&registry())
        .unwrap()
        .run(&events);
    assert_eq!(run.degraded, vec![1]);
    assert!(run.dropped_events > 0);
    assert!(!run.results().is_empty());
}

// ---------------------------------------------------------------------
// Fail: sticky, typed, checkpoint-refusing
// ---------------------------------------------------------------------

/// Under the default policy a worker death surfaces as a typed
/// `IngestError::WorkerFailed` from `ingest_csv`, stays sticky for
/// further input, emits nothing at finish, and refuses to checkpoint.
#[test]
fn fail_policy_surfaces_a_typed_csv_error_and_stays_sticky() {
    let _g = guard();
    cogra_faults::configure("worker/batch/0", Trigger::OnHit(1));
    let reg = registry();
    let mut session = Session::builder()
        .query(QUERY)
        .workers(4)
        .batch_size(2)
        .build(&reg)
        .unwrap();
    let err = session
        .ingest_csv(&build_csv(300), &reg)
        .expect_err("the killed worker must surface");
    assert!(
        matches!(err, IngestError::WorkerFailed(_)),
        "expected WorkerFailed, got {err:?}"
    );
    assert!(
        err.to_string()
            .contains("worker failed: injected fault at worker/batch/0"),
        "untyped message: {err}"
    );
    // Sticky: the next document (in time order — the watermark check
    // runs first) is refused with the same failure…
    let again = session
        .ingest_csv("type,time,g,v\nA,1000,0,0\n", &reg)
        .expect_err("sticky");
    assert_eq!(again.to_string(), err.to_string());
    // …checkpointing is a typed refusal, not a partial snapshot…
    let refusal = session
        .checkpoint(&mut Vec::new())
        .expect_err("no checkpoint");
    assert!(
        refusal
            .to_string()
            .contains("cannot checkpoint a failed session"),
        "wrong refusal: {refusal}"
    );
    // …and the finish emits nothing (no partial rows masquerading as
    // complete results).
    assert!(session.drain().is_empty());
    assert!(session.finish().is_empty());
    assert!(session.worker_failure().is_some());
}

/// A degraded session's state is partially gone — it must refuse to
/// checkpoint too.
#[test]
fn degraded_session_refuses_to_checkpoint() {
    let _g = guard();
    cogra_faults::configure("worker/batch/1", Trigger::OnHit(2));
    let events = build_events(240);
    let mut session = Session::builder()
        .query(QUERY)
        .workers(4)
        .batch_size(5)
        .on_worker_failure(FailurePolicy::Degrade)
        .build(&registry())
        .unwrap();
    for e in &events {
        session.process(e);
    }
    let _ = session.drain();
    assert_eq!(session.degraded_shards(), vec![1]);
    let refusal = session
        .checkpoint(&mut Vec::new())
        .expect_err("no checkpoint");
    assert!(
        refusal
            .to_string()
            .contains("cannot checkpoint a degraded session"),
        "wrong refusal: {refusal}"
    );
}

/// A shard that dies on *every* delivery cannot be restarted forever:
/// the supervisor escalates to a sticky failure naming the restart cap.
#[test]
fn restart_escalates_after_max_restarts() {
    let _g = guard();
    cogra_faults::configure("worker/batch/0", Trigger::Always);
    let events = build_events(300);
    let mut session = Session::builder()
        .query(QUERY)
        .workers(4)
        .batch_size(2)
        .on_worker_failure(FailurePolicy::Restart)
        .build(&registry())
        .unwrap();
    for e in &events {
        session.process(e);
    }
    let _ = session.drain();
    let _ = session.finish();
    let failure = session
        .worker_failure()
        .expect("the restart loop must give up");
    assert!(
        failure.to_string().contains("giving up after 8 restarts"),
        "missing escalation marker: {failure}"
    );
    assert!(
        failure
            .to_string()
            .contains("injected fault at worker/batch/0"),
        "escalation lost the root cause: {failure}"
    );
}

// ---------------------------------------------------------------------
// Crash-safe snapshots
// ---------------------------------------------------------------------

/// `write_atomic` killed mid-write or mid-rename: the previous snapshot
/// at the final path stays byte-intact, the half-written `.tmp` does not
/// restore (readable-but-wrong is impossible), and a clean retry after
/// the fault clears produces a working snapshot.
#[test]
fn crash_mid_snapshot_write_preserves_the_previous_checkpoint() {
    let _g = guard();
    let tmp = TempDir::new("atomic");
    let path = tmp.path("snap.cogra");
    let reg = registry();
    let events = build_events(160);
    let mut session = Session::builder()
        .query(QUERY)
        .workers(4)
        .batch_size(7)
        .build(&reg)
        .unwrap();
    for e in &events[..100] {
        session.process(e);
    }
    let _ = session.drain();
    write_atomic(&path, |buf| session.checkpoint(buf)).expect("first snapshot lands");
    let previous = std::fs::read(&path).unwrap();

    for e in &events[100..] {
        session.process(e);
    }
    let _ = session.drain();

    // Killed mid-write: a prefix of the new snapshot lands in `.tmp`.
    cogra_faults::configure("checkpoint/write", Trigger::Always);
    let err = write_atomic(&path, |buf| session.checkpoint(buf)).expect_err("injected");
    assert_eq!(
        err.to_string(),
        "i/o error: injected fault at checkpoint/write"
    );
    assert_eq!(
        std::fs::read(&path).unwrap(),
        previous,
        "previous snapshot damaged"
    );
    let half = std::fs::read(format!("{path}.tmp")).expect("the crash leaves a .tmp");
    assert!(!half.is_empty() && half.len() < previous.len() * 2);
    assert!(
        Session::builder().restore(&reg, &half[..]).is_err(),
        "a half-written snapshot must never restore"
    );

    // Killed between write and rename: same contract.
    cogra_faults::reset();
    cogra_faults::configure("checkpoint/rename", Trigger::Always);
    let err = write_atomic(&path, |buf| session.checkpoint(buf)).expect_err("injected");
    assert_eq!(
        err.to_string(),
        "i/o error: injected fault at checkpoint/rename"
    );
    assert_eq!(
        std::fs::read(&path).unwrap(),
        previous,
        "previous snapshot damaged"
    );

    // Fault cleared: the retry replaces the snapshot atomically and the
    // replacement restores to the same rows the live session finishes to.
    cogra_faults::reset();
    write_atomic(&path, |buf| session.checkpoint(buf)).expect("retry lands");
    let bytes = std::fs::read(&path).unwrap();
    assert_ne!(bytes, previous, "the retry must hold the newer state");
    let restored_rows = Session::builder()
        .restore(&reg, &bytes[..])
        .expect("the retried snapshot restores")
        .finish();
    assert_eq!(restored_rows, session.finish());
}

/// The same crash, injected into the CLI through the `COGRA_FAULTS`
/// environment schedule: `--checkpoint` exits non-zero with the typed
/// `error: <path>: i/o error: …` line, the prior snapshot survives
/// byte-identically, and a `--restore` run against it still works.
#[test]
fn cli_checkpoint_crash_leaves_prior_snapshot_restorable() {
    const SCHEMA: &str = "type,attr,kind\n\
                          Measurement,patient,int\n\
                          Measurement,rate,int\n";
    const CLI_QUERY: &str = "RETURN patient, COUNT(*)\n\
                             PATTERN Measurement M+\n\
                             SEMANTICS skip-till-any-match\n\
                             WHERE [patient]\n\
                             GROUP-BY patient\n\
                             WITHIN 100 SLIDE 100\n";
    const STREAM: &str = "type,time,patient,rate\n\
                          Measurement,1,7,60\n\
                          Measurement,2,7,62\n\
                          Measurement,3,8,70\n\
                          Measurement,4,8,75\n";
    let _g = guard();
    let tmp = TempDir::new("cli");
    std::fs::write(tmp.path("schema.csv"), SCHEMA).unwrap();
    std::fs::write(tmp.path("query.cep"), CLI_QUERY).unwrap();
    std::fs::write(tmp.path("stream.csv"), STREAM).unwrap();
    // The restore leg replays no events — the snapshot carries the state.
    std::fs::write(tmp.path("empty.csv"), "type,time,patient,rate\n").unwrap();
    let snap = tmp.path("snap.cogra");
    let run = |extra: &[&str], faults: Option<&str>| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_cogra-run"));
        cmd.arg("--schema").arg(tmp.path("schema.csv"));
        cmd.args(extra);
        if let Some(schedule) = faults {
            cmd.env("COGRA_FAULTS", schedule);
        }
        let out = cmd.output().expect("binary runs");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };

    // A clean checkpoint run seeds the snapshot.
    let query = tmp.path("query.cep");
    let stream = tmp.path("stream.csv");
    let (ok, _, stderr) = run(
        &[
            "--events",
            &stream,
            "--query",
            &query,
            "--checkpoint",
            &snap,
        ],
        None,
    );
    assert!(ok, "seed run failed: {stderr}");
    let previous = std::fs::read(&snap).unwrap();

    // The armed run crashes mid-write — typed stderr, intact snapshot.
    let (ok, _, stderr) = run(
        &[
            "--events",
            &stream,
            "--query",
            &query,
            "--checkpoint",
            &snap,
        ],
        Some("checkpoint/write=always"),
    );
    assert!(!ok, "the injected crash must fail the run");
    assert!(
        stderr.contains(&format!(
            "error: {snap}: i/o error: injected fault at checkpoint/write"
        )),
        "wrong stderr: {stderr}"
    );
    assert_eq!(
        std::fs::read(&snap).unwrap(),
        previous,
        "prior snapshot damaged"
    );

    // The surviving snapshot still restores and finishes the windows.
    let empty = tmp.path("empty.csv");
    let (ok, stdout, stderr) = run(&["--events", &empty, "--restore", &snap], None);
    assert!(ok, "restore after the crash failed: {stderr}");
    assert!(
        stdout.contains("[7]") && stdout.contains("[8]"),
        "missing rows: {stdout}"
    );
}
