//! Differential battery for the durability subsystem: a run-prefix →
//! `Session::checkpoint` → `SessionBuilder::restore` → run-suffix
//! pipeline must be **byte-identical** — results, late-drop counts, run
//! stats — to the same stream run uninterrupted, across workloads
//! {stock, rideshare, transport, skew, churn} × snapshot/restore workers {1, 2, 4, 8}
//! × slack {0, 8}, including elastic rescales (snapshot width ≠ restore
//! width), edge splits (checkpoint before the first / after the last
//! event) and chained snapshots (restore of a restore).
//!
//! On top of the in-process battery:
//! * a server kill-and-resume e2e: ingest a prefix through
//!   `cogra-server`, `SNAPSHOT`, hard-stop the server *without* `FINISH`,
//!   resume a second server from the file at a different width, replay
//!   the suffix — the two subscribers' pushed rows concatenate to the
//!   uninterrupted run;
//! * error-text pinning: a damaged snapshot produces the *same*
//!   `{path}: {CheckpointError}` text from the CLI (`--restore`) and the
//!   server (`spawn_restored`), for every corruption class;
//! * the interner-compaction regression: a partition-churning stream
//!   checkpoints only live partitions, so the restored session's
//!   `memory_bytes` drops and a revived dead key re-allocates.
//!
//! Every test body runs under a watchdog so a wedged shard pool or a
//! hung server fails fast instead of stalling CI.

use cogra::prelude::*;
use cogra::workloads::{churn, rideshare, skew, stock, transport};
use cogra::workloads::{ChurnConfig, RideshareConfig, SkewConfig, StockConfig, TransportConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::mpsc;
use std::time::Duration;

/// Per-test timeout: generous for debug builds, far below CI's patience.
const WATCHDOG_SECS: u64 = 120;

/// Run `f` on its own thread; panic if it does not finish in time.
fn watchdog<T: Send + 'static>(name: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(WATCHDOG_SECS)) {
        Ok(value) => {
            let _ = worker.join();
            value
        }
        Err(_) => panic!("{name}: hung for {WATCHDOG_SECS}s (shard pool / server deadlock?)"),
    }
}

/// One battery workload: registry, query, and a generated stream.
fn workload(idx: usize, seed: u64, n: usize) -> (TypeRegistry, String, Vec<Event>) {
    match idx {
        0 => (
            stock::registry(),
            stock::q3_query(50, 25),
            stock::generate(&StockConfig {
                events: n,
                seed,
                ..StockConfig::default()
            }),
        ),
        1 => (
            rideshare::registry(),
            rideshare::q2_query(80, 40),
            rideshare::generate(&RideshareConfig {
                events: n,
                seed,
                ..RideshareConfig::default()
            }),
        ),
        2 => (
            transport::registry(),
            transport::next_query(40, 20),
            transport::generate(&TransportConfig {
                events: n,
                seed,
                ..TransportConfig::default()
            }),
        ),
        // Adversarial workloads: the hostile key shapes must round-trip
        // a checkpoint/rescale as cleanly as the friendly ones.
        3 => (
            skew::registry(),
            skew::count_query(50, 25),
            skew::generate(&SkewConfig {
                events: n,
                seed,
                ..SkewConfig::default()
            }),
        ),
        // Churn floods the interner with short-lived session ids, so a
        // rescale restore replays snapshot-time compaction under fire.
        _ => (
            churn::registry(),
            churn::count_query(40, 20),
            churn::generate(&ChurnConfig {
                events: n,
                seed,
                ..ChurnConfig::default()
            }),
        ),
    }
}

/// Disorder the arrival order with bounded displacement (same idiom as
/// `tests/server_e2e_props.rs`): offsets beyond the session's slack make
/// some events hopelessly late, so the battery checks late-drop
/// accounting across the checkpoint too.
fn jitter(events: Vec<Event>, extent: u64, seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keyed: Vec<(u64, usize, Event)> = events
        .into_iter()
        .enumerate()
        .map(|(i, e)| (e.time.ticks() + rng.random_range(0..=extent), i, e))
        .collect();
    keyed.sort_by_key(|&(key, position, _)| (key, position));
    keyed.into_iter().map(|(_, _, e)| e).collect()
}

fn builder_for(query: &str, workers: usize, slack: u64) -> SessionBuilder {
    let mut builder = Session::builder().query(query).workers(workers);
    if slack > 0 {
        builder = builder.slack(slack);
    }
    builder
}

/// A collision-free scratch path under the OS temp dir.
fn temp_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("cogra-ckpt-{}-{tag}.snap", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// The differential core: feed `events[..split]` at `snap_workers`,
/// checkpoint, restore the snapshot at `restore_workers`, feed the rest,
/// finish — and compare everything observable against the uninterrupted
/// run. The batch-size axis is derived from the seed: the prefix session
/// (and its reference) picks one shard-transport batch size, the
/// restored session independently overrides another — the snapshot
/// boundary must be transparent to both. Returns
/// `(snapshot_bytes, late_drops)` for battery-wide liveness checks.
fn split_case(
    wl: usize,
    seed: u64,
    n: usize,
    snap_workers: usize,
    restore_workers: usize,
    slack: u64,
    split: usize,
) -> (usize, u64) {
    const BATCHES: [usize; 4] = [1, 7, 256, 512];
    let snap_batch = BATCHES[(seed % 4) as usize];
    let restore_batch = BATCHES[(seed / 4 % 4) as usize];
    let (registry, query, events) = workload(wl, seed, n);
    let events = if slack > 0 {
        jitter(events, slack + 4, seed ^ 0x9e37)
    } else {
        events
    };
    let split = split.min(events.len());
    let label = format!(
        "wl={wl} seed={seed} split={split}/{n} {snap_workers}→{restore_workers} workers \
         slack={slack} batch {snap_batch}→{restore_batch}"
    );

    let reference = builder_for(&query, snap_workers, slack)
        .batch_size(snap_batch)
        .build(&registry)
        .expect("reference session builds")
        .run(&events);

    let mut session = builder_for(&query, snap_workers, slack)
        .batch_size(snap_batch)
        .build(&registry)
        .expect("prefix session builds");
    let mut collected: Vec<TaggedResult> = Vec::new();
    for e in &events[..split] {
        session.process(e);
        session.drain_into(&mut collected);
    }
    let mut snap = Vec::new();
    session.checkpoint(&mut snap).expect("checkpoint");
    drop(session);

    let mut restored = Session::builder()
        .workers(restore_workers)
        .batch_size(restore_batch)
        .restore(&registry, snap.as_slice())
        .unwrap_or_else(|e| panic!("restore failed ({label}): {e}"));
    for e in &events[split..] {
        restored.process(e);
        restored.drain_into(&mut collected);
    }
    restored.finish_into(&mut collected);
    let stats = restored.run_stats();
    let late = restored.late_events();

    let mut per_query: Vec<Vec<WindowResult>> = vec![Vec::new(); reference.per_query.len()];
    for t in collected {
        per_query[t.query].push(t.result);
    }
    for results in &mut per_query {
        WindowResult::sort(results);
    }

    assert_eq!(per_query, reference.per_query, "results differ ({label})");
    assert_eq!(late, reference.late_events, "late drops differ ({label})");
    // Routed (event, engine) pairs are identical on both paths; key
    // materializations can only *grow* across a restore, when interner
    // compaction dropped a dead key that the suffix then revives.
    assert_eq!(
        stats.key_probes, reference.stats.key_probes,
        "probe counts differ ({label})"
    );
    assert!(
        stats.key_allocs >= reference.stats.key_allocs,
        "restored run allocated fewer keys than uninterrupted ({label}): {} < {}",
        stats.key_allocs,
        reference.stats.key_allocs
    );
    (snap.len(), late)
}

#[test]
fn grid_rescale_round_trips() {
    // Workload 0 runs the full {1,2,4,8}² rescale grid; the others cover
    // the interesting corners (scale-up, scale-down, identity, and the
    // streaming↔pool transitions through width 1).
    const FULL: [usize; 4] = [1, 2, 4, 8];
    let corners: [(usize, usize); 6] = [(1, 4), (4, 1), (2, 8), (8, 2), (1, 1), (8, 8)];
    let mut late_total = 0u64;
    for wl in 0..5 {
        let pairs: Vec<(usize, usize)> = if wl == 0 {
            FULL.iter()
                .flat_map(|&sw| FULL.iter().map(move |&rw| (sw, rw)))
                .collect()
        } else {
            corners.to_vec()
        };
        for slack in [0u64, 8] {
            for &(sw, rw) in &pairs {
                let label = format!("grid wl={wl} {sw}→{rw} slack={slack}");
                late_total += watchdog(&label.clone(), move || {
                    split_case(wl, 11, 320, sw, rw, slack, 140).1
                });
            }
        }
    }
    // The slack axis must have exercised real drops, or the late-drop
    // parity assertions above were vacuous.
    assert!(late_total > 0, "the jittered grid cases dropped no events");
}

#[test]
fn edge_splits_round_trip() {
    // split = 0: the snapshot captures a virgin session (with slack, an
    // empty reorder buffer). split = n: the whole stream is inside the
    // snapshot and the restored session only has to finish.
    for (sw, rw) in [(1usize, 4usize), (4, 2)] {
        for slack in [0u64, 8] {
            for split in [0usize, 200] {
                let label = format!("edge {sw}→{rw} slack={slack} split={split}");
                watchdog(&label.clone(), move || {
                    split_case(1, 5, 200, sw, rw, slack, split);
                });
            }
        }
    }
}

#[test]
fn chained_checkpoints_round_trip() {
    // A restore of a restore: the stream crosses several snapshots, each
    // resuming at a different width. Proves restored sessions checkpoint
    // as well as built ones.
    fn chain(wl: usize, widths: &[usize], slack: u64) {
        let n = 360;
        let (registry, query, events) = workload(wl, 13, n);
        let events = if slack > 0 {
            jitter(events, slack + 4, 0x51ac)
        } else {
            events
        };
        let reference = builder_for(&query, widths[0], slack)
            .build(&registry)
            .expect("reference builds")
            .run(&events);

        let mut collected: Vec<TaggedResult> = Vec::new();
        let mut session = builder_for(&query, widths[0], slack)
            .build(&registry)
            .expect("first session builds");
        let cut = events.len() / widths.len();
        for (leg, width) in widths.iter().enumerate().skip(1) {
            for e in &events[(leg - 1) * cut..leg * cut] {
                session.process(e);
                session.drain_into(&mut collected);
            }
            let mut snap = Vec::new();
            session.checkpoint(&mut snap).expect("checkpoint");
            session = Session::builder()
                .workers(*width)
                .restore(&registry, snap.as_slice())
                .unwrap_or_else(|e| panic!("leg {leg} restore: {e}"));
        }
        for e in &events[(widths.len() - 1) * cut..] {
            session.process(e);
            session.drain_into(&mut collected);
        }
        session.finish_into(&mut collected);

        let mut per_query: Vec<Vec<WindowResult>> = vec![Vec::new(); reference.per_query.len()];
        for t in collected {
            per_query[t.query].push(t.result);
        }
        for results in &mut per_query {
            WindowResult::sort(results);
        }
        let label = format!("chain wl={wl} widths={widths:?} slack={slack}");
        assert_eq!(per_query, reference.per_query, "results differ ({label})");
        assert_eq!(
            session.late_events(),
            reference.late_events,
            "late drops differ ({label})"
        );
    }
    watchdog("chain-wide", || chain(0, &[4, 1, 8, 2], 0));
    watchdog("chain-slack", || chain(2, &[1, 4, 2], 8));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_splits_round_trip(
        wl in 0usize..5,
        pair_idx in 0usize..16,
        slack_idx in 0usize..2,
        seed in 0u64..10_000,
        n in 120usize..420,
        split_pct in 0usize..101,
    ) {
        let sw = [1, 2, 4, 8][pair_idx / 4];
        let rw = [1, 2, 4, 8][pair_idx % 4];
        let slack = [0u64, 8][slack_idx];
        let split = n * split_pct / 100;
        let label = format!("prop wl={wl} {sw}→{rw} slack={slack} seed={seed} split={split}");
        watchdog(&label.clone(), move || {
            split_case(wl, seed, n, sw, rw, slack, split);
        });
    }
}

/// Collect pushed rows until `EOS` *or* the connection drops — the
/// kill-and-resume test hard-stops the first server mid-stream, so its
/// subscriber ends on a reset, not an `EOS`.
fn collect_rows(subscription: Subscription) -> Vec<String> {
    let mut rows = Vec::new();
    for item in subscription {
        match item {
            Ok((q, row)) => rows.push(format!("q{q} {row}")),
            Err(_) => break,
        }
    }
    rows
}

#[test]
fn server_kill_and_resume_equals_uninterrupted() {
    watchdog("kill-and-resume", || {
        let slack = 8u64;
        let (registry, query, events) = workload(0, 21, 320);
        let events = jitter(events, slack + 4, 0x5eed);
        let reference = builder_for(&query, 4, slack)
            .build(&registry)
            .expect("reference builds")
            .run(&events);
        let mut expected: Vec<String> = reference
            .per_query
            .iter()
            .enumerate()
            .flat_map(|(q, results)| results.iter().map(move |r| format!("q{q} {r}")))
            .collect();
        expected.sort();

        let split = events.len() / 2;
        let head = write_events(&events[..split], &registry);
        let tail = write_events(&events[split..], &registry);
        let snap = temp_path("resume");

        // Server 1: ingest the prefix, SNAPSHOT, hard stop — no FINISH,
        // so open windows are *not* force-closed; they live in the file.
        let server = Server::spawn(
            builder_for(&query, 4, slack),
            registry.clone(),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("server 1 starts");
        let addr = server.local_addr();
        let subscription = Client::connect(addr)
            .expect("subscriber 1 connects")
            .subscribe(None)
            .expect("subscribe io")
            .expect("subscribe accepted");
        let collector = std::thread::spawn(move || collect_rows(subscription));
        let mut feed = Client::connect(addr).expect("feed 1 connects");
        feed.replay_csv(&head, 64).expect("io").expect("ingest ok");
        feed.drain().expect("io").expect("drain ok");
        feed.snapshot(&snap).expect("io").expect("snapshot ok");
        server.shutdown();
        let mut rows = collector.join().expect("subscriber 1 joins");

        // Server 2: resume from the file at a different width, replay the
        // suffix, FINISH for real.
        let server = Server::spawn_restored(
            Session::builder().workers(2),
            registry.clone(),
            &*snap,
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("server 2 restores");
        let addr = server.local_addr();
        let subscription = Client::connect(addr)
            .expect("subscriber 2 connects")
            .subscribe(None)
            .expect("subscribe io")
            .expect("subscribe accepted");
        let collector = std::thread::spawn(move || collect_rows(subscription));
        let mut feed = Client::connect(addr).expect("feed 2 connects");
        feed.replay_csv(&tail, 64).expect("io").expect("ingest ok");
        let finish = feed.finish().expect("io").expect("finish ok");
        rows.extend(collector.join().expect("subscriber 2 joins"));
        server.shutdown();
        std::fs::remove_file(&snap).ok();

        rows.sort();
        assert_eq!(rows, expected, "prefix + resumed rows ≠ uninterrupted run");
        // The reorderer's late counter crossed the restart inside the
        // snapshot: the resumed server reports the *stream-wide* total.
        assert_eq!(
            finish.late, reference.late_events,
            "late drops lost across the restart"
        );
        assert_eq!(finish.workers, 2, "resume did not rescale to 2 workers");
        assert!(finish.finished);
        assert!(
            !rows.is_empty(),
            "battery bug: the split emitted nothing before the kill"
        );
    });
}

/// One corruption case: damage a valid snapshot with `damage`, then
/// assert the CLI (`--restore`) and the server (`spawn_restored`) report
/// the *identical* `{path}: {CheckpointError}` text.
fn pin_corruption_case(
    tag: &str,
    valid: &[u8],
    registry: &TypeRegistry,
    schema_path: &str,
    events_path: &str,
    damage: impl FnOnce(&mut Vec<u8>),
    expect_contains: &str,
) {
    let mut bytes = valid.to_vec();
    damage(&mut bytes);
    let snap = temp_path(tag);
    std::fs::write(&snap, &bytes).expect("write damaged snapshot");

    // Server side: the typed error, displayed exactly as the ERR payload.
    let server_err = match Server::spawn_restored(
        Session::builder(),
        registry.clone(),
        &*snap,
        "127.0.0.1:0",
        ServerConfig::default(),
    ) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("{tag}: server restored a damaged snapshot"),
    };
    assert!(
        server_err.contains(expect_contains),
        "{tag}: server error `{server_err}` does not mention `{expect_contains}`"
    );
    assert!(
        server_err.starts_with(&snap),
        "{tag}: server error `{server_err}` is not `{{path}}: …`"
    );

    // CLI side: `error: {path}: {display}` on stderr, nonzero exit.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_cogra-run"))
        .args([
            "--schema",
            schema_path,
            "--events",
            events_path,
            "--restore",
            &snap,
        ])
        .output()
        .expect("cogra-run executes");
    assert!(!output.status.success(), "{tag}: CLI exited 0");
    let stderr = String::from_utf8_lossy(&output.stderr);
    let cli_line = stderr
        .lines()
        .find(|l| l.starts_with("error: "))
        .unwrap_or_else(|| panic!("{tag}: no `error:` line in CLI stderr `{stderr}`"));
    assert_eq!(
        cli_line,
        format!("error: {server_err}"),
        "{tag}: CLI and server disagree on the error text"
    );
    std::fs::remove_file(&snap).ok();
}

#[test]
fn corrupt_snapshot_errors_pin_cli_and_server() {
    watchdog("corruption-pinning", || {
        // A real snapshot to damage, from a tiny churn-free session.
        let mut registry = TypeRegistry::new();
        let t = registry.register_type("T", vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
        let query = "RETURN g, COUNT(*) PATTERN T t+ SEMANTICS skip-till-any-match \
                     GROUP-BY g WITHIN 8 SLIDE 8";
        let mut builder = EventBuilder::new();
        let events: Vec<Event> = (0..24)
            .map(|i| builder.event(i + 1, t, vec![Value::Int(i as i64 / 4), Value::Int(1)]))
            .collect();
        let mut session = Session::builder()
            .query(query)
            .build(&registry)
            .expect("session builds");
        for e in &events {
            session.process(e);
        }
        let mut valid = Vec::new();
        session.checkpoint(&mut valid).expect("checkpoint");

        // The CLI needs a schema and an events file; the restore error
        // fires before either stream row is parsed.
        let schema_path = temp_path("schema");
        let events_path = temp_path("events");
        std::fs::write(&schema_path, "T,g,int\nT,v,int\n").expect("write schema");
        std::fs::write(&events_path, write_events(&events, &registry)).expect("write events");

        pin_corruption_case(
            "bad-magic",
            &valid,
            &registry,
            &schema_path,
            &events_path,
            |b| b[0] ^= 0xff,
            "not a cogra snapshot",
        );
        pin_corruption_case(
            "future-version",
            &valid,
            &registry,
            &schema_path,
            &events_path,
            |b| b[8..12].copy_from_slice(&99u32.to_le_bytes()),
            "newer than supported",
        );
        let half = valid.len() / 2;
        pin_corruption_case(
            "truncated",
            &valid,
            &registry,
            &schema_path,
            &events_path,
            move |b| b.truncate(half),
            "truncated",
        );
        let last = valid.len() - 1;
        pin_corruption_case(
            "checksum",
            &valid,
            &registry,
            &schema_path,
            &events_path,
            move |b| b[last] ^= 0xff,
            "checksum mismatch",
        );

        std::fs::remove_file(&schema_path).ok();
        std::fs::remove_file(&events_path).ok();
    });
}

#[test]
fn churn_snapshot_compacts_interner() {
    watchdog("churn-compaction", || {
        // 100 group keys, each alive for 4 ticks under WITHIN 8 SLIDE 8:
        // by the end of the stream almost every partition's windows have
        // closed and drained — the keys are dead weight the snapshot
        // rewrite is allowed to shed.
        let mut registry = TypeRegistry::new();
        let t = registry.register_type("T", vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
        let query = "RETURN g, COUNT(*) PATTERN T t+ SEMANTICS skip-till-any-match \
                     GROUP-BY g WITHIN 8 SLIDE 8";
        let mut builder = EventBuilder::new();
        let events: Vec<Event> = (0..400u64)
            .map(|i| builder.event(i + 1, t, vec![Value::Int(i as i64 / 4), Value::Int(1)]))
            .collect();

        let mut session = Session::builder()
            .query(query)
            .build(&registry)
            .expect("session builds");
        let mut drained: Vec<TaggedResult> = Vec::new();
        for e in &events {
            session.process(e);
            session.drain_into(&mut drained);
        }
        let before = session.memory_bytes();

        let mut snap = Vec::new();
        session.checkpoint(&mut snap).expect("checkpoint");
        let mut restored = Session::builder()
            .restore(&registry, snap.as_slice())
            .expect("restore");
        let after = restored.memory_bytes();
        assert!(
            after * 2 < before,
            "snapshot rewrite did not compact: {after} bytes restored vs {before} live"
        );

        // The compaction is exactly "retained keys == live partitions":
        // reviving the long-dead key g=0 re-allocates on the restored
        // session but probes straight through on the original.
        let allocs_orig = session.run_stats().key_allocs;
        let allocs_restored = restored.run_stats().key_allocs;
        assert_eq!(
            allocs_orig, allocs_restored,
            "restore changed the checkpointed alloc counter"
        );
        let revival = builder.event(401, t, vec![Value::Int(0), Value::Int(1)]);
        session.process(&revival);
        restored.process(&revival);
        assert_eq!(
            session.run_stats().key_allocs,
            allocs_orig,
            "original session re-allocated a key it still holds"
        );
        assert_eq!(
            restored.run_stats().key_allocs,
            allocs_restored + 1,
            "restored session kept a dead key the snapshot should have shed"
        );

        // Compaction must not change behavior: both sessions finish with
        // identical remaining results.
        let mut tail_orig: Vec<TaggedResult> = session.finish();
        let mut tail_restored: Vec<TaggedResult> = restored.finish();
        let key = |t: &TaggedResult| (t.query, t.result.to_string());
        tail_orig.sort_by_key(key);
        tail_restored.sort_by_key(key);
        assert_eq!(
            tail_orig.len(),
            tail_restored.len(),
            "restored tail emits a different result count"
        );
        for (a, b) in tail_orig.iter().zip(&tail_restored) {
            assert_eq!(a.query, b.query);
            assert_eq!(a.result, b.result);
        }
        assert!(
            !tail_orig.is_empty(),
            "battery bug: the churn tail emitted nothing"
        );
    });
}
