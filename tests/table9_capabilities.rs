//! Table 9: the expressive-power matrix, enforced by the engine
//! constructors — an engine must refuse exactly the query features its
//! Table 9 row lacks.
#![allow(clippy::assertions_on_constants)] // the constants ARE the matrix under test

use cogra::baselines::{aseq_engine, flink_engine, greta_engine, sase_engine, Capabilities};
use cogra::core::runtime::EngineConfig;
use cogra::prelude::*;

fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    for t in ["A", "B"] {
        r.register_type(t, vec![("v", ValueKind::Int)]);
    }
    r
}

fn query(semantics: &str, theta: bool) -> Query {
    let theta = if theta { "WHERE A.v < NEXT(A).v " } else { "" };
    parse(&format!(
        "RETURN COUNT(*) PATTERN SEQ(A+, B) SEMANTICS {semantics} {theta}WITHIN 10 SLIDE 5"
    ))
    .unwrap()
}

#[test]
fn cogra_supports_every_cell_of_table9() {
    let reg = registry();
    for sem in ["ANY", "NEXT", "CONT"] {
        for theta in [false, true] {
            assert!(
                CograEngine::build(&query(sem, theta), &reg).is_ok(),
                "{sem} theta={theta}"
            );
        }
    }
}

#[test]
fn sase_supports_all_semantics_two_step() {
    let reg = registry();
    for sem in ["ANY", "NEXT", "CONT"] {
        assert!(sase_engine(&query(sem, true), &reg).is_ok(), "{sem}");
    }
    assert!(!Capabilities::SASE.online);
}

#[test]
fn greta_is_any_only() {
    let reg = registry();
    assert!(greta_engine(&query("ANY", true), &reg).is_ok());
    assert!(greta_engine(&query("NEXT", false), &reg).is_err());
    assert!(greta_engine(&query("CONT", false), &reg).is_err());
    assert!(Capabilities::GRETA.online);
}

#[test]
fn aseq_rejects_next_cont_and_adjacent_predicates() {
    let reg = registry();
    let cfg = EngineConfig::default();
    assert!(aseq_engine(&query("ANY", false), &reg, cfg.clone()).is_ok());
    assert!(aseq_engine(&query("ANY", true), &reg, cfg.clone()).is_err());
    assert!(aseq_engine(&query("NEXT", false), &reg, cfg.clone()).is_err());
    assert!(aseq_engine(&query("CONT", false), &reg, cfg).is_err());
    assert!(!Capabilities::ASEQ.native_kleene);
}

#[test]
fn flink_rejects_next_only() {
    let reg = registry();
    let cfg = EngineConfig::default();
    assert!(flink_engine(&query("ANY", true), &reg, cfg.clone()).is_ok());
    assert!(flink_engine(&query("CONT", true), &reg, cfg.clone()).is_ok());
    assert!(flink_engine(&query("NEXT", false), &reg, cfg).is_err());
    assert!(!Capabilities::FLINK.native_kleene);
}

#[test]
fn capabilities_matrix_matches_paper_rows() {
    // Spot-check the struct constants against Table 9.
    assert!(Capabilities::COGRA.native_kleene && Capabilities::COGRA.online);
    assert!(Capabilities::COGRA.any && Capabilities::COGRA.next && Capabilities::COGRA.cont);
    assert!(Capabilities::SASE.next && !Capabilities::FLINK.next);
    assert!(Capabilities::FLINK.cont && !Capabilities::GRETA.cont);
    assert!(!Capabilities::ASEQ.adjacent_predicates);
    assert!(Capabilities::GRETA.adjacent_predicates);
}
