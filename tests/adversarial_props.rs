//! Differential battery over the **adversarial** workload generators
//! (`cogra::workloads::{skew, churn, burst, fraud}`, ROADMAP direction
//! 5): for every hostile stream shape the `.workers(n)` streaming path
//! must stay byte-identical to a single sequential engine, the per-shard
//! ingest counters must account for every event, and the guard rails the
//! hostile shapes exist to trip — key-limit overflow, late-drop policy —
//! must fire *identically* on every worker count.
//!
//! Complements the hooks the adversarial generators have in the other
//! batteries: `checkpoint_props` (skew/churn rescale round-trips),
//! `routing_intern_props` (churn vs. the reference router) and
//! `streaming_parallel_props` (burst slack × workers late-drop
//! invariance under shrinking).

use cogra::prelude::*;
use cogra::workloads::{burst, churn, fraud, skew};
use cogra::workloads::{BurstConfig, ChurnConfig, FraudConfig, SkewConfig};
use proptest::prelude::*;
use std::sync::mpsc;
use std::time::Duration;

/// Per-test timeout: generous for debug builds, far below CI's patience.
const WATCHDOG_SECS: u64 = 120;

/// Run `f` on its own thread; panic if it does not finish in time.
fn watchdog<T: Send + 'static>(name: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(WATCHDOG_SECS)) {
        Ok(value) => {
            let _ = worker.join();
            value
        }
        Err(_) => panic!("{name}: hung for {WATCHDOG_SECS}s (shard pool deadlock?)"),
    }
}

/// One adversarial workload: registry, query, stream, and the slack its
/// disorder needs (0 for the time-ordered generators).
fn workload(idx: usize, seed: u64, n: usize) -> (TypeRegistry, String, Vec<Event>, u64) {
    match idx {
        0 => (
            skew::registry(),
            skew::count_query(50, 25),
            skew::generate(&SkewConfig {
                events: n,
                seed,
                ..SkewConfig::default()
            }),
            0,
        ),
        1 => (
            churn::registry(),
            churn::count_query(40, 20),
            churn::generate(&ChurnConfig {
                events: n,
                seed,
                ..ChurnConfig::default()
            }),
            0,
        ),
        2 => {
            let cfg = BurstConfig {
                events: n,
                seed,
                ..BurstConfig::default()
            };
            (
                burst::registry(),
                burst::count_query(16, 8),
                burst::generate(&cfg),
                cfg.disorder,
            )
        }
        _ => (
            fraud::registry(),
            fraud::detect_query(60, 30),
            fraud::generate(&FraudConfig {
                events: n,
                seed,
                // High enough that a few-hundred-event stream still
                // plants complete chains.
                fraud_rate: 0.02,
                ..FraudConfig::default()
            }),
            0,
        ),
    }
}

/// The differential core: sequential reference vs. a `.workers(n)`
/// session fed chunk by chunk with live drains. Returns the reference
/// result count for battery-wide liveness checks.
fn diff_case(wl: usize, seed: u64, n: usize, workers: usize, chunk: usize, batch: usize) -> usize {
    let (registry, query, events, slack) = workload(wl, seed, n);
    let label = format!("wl={wl} seed={seed} n={n} workers={workers} chunk={chunk} batch={batch}");

    let mut reference_builder = Session::builder().query(query.as_str());
    if slack > 0 {
        reference_builder = reference_builder.slack(slack);
    }
    let reference = reference_builder
        .build(&registry)
        .expect("reference session builds")
        .run(&events);

    let mut builder = Session::builder()
        .query(query.as_str())
        .workers(workers)
        .batch_size(batch);
    if slack > 0 {
        builder = builder.slack(slack);
    }
    let mut session = builder.build(&registry).expect("session builds");
    let mut out: Vec<WindowResult> = Vec::new();
    for c in events.chunks(chunk.max(1)) {
        for e in c {
            session.process(e);
        }
        session.drain_into(&mut out);
    }
    session.finish_into(&mut out);
    let late = session.late_events();
    let shard_events = session.shard_events();
    WindowResult::sort(&mut out);

    assert_eq!(vec![out], reference.per_query, "results differ ({label})");
    assert_eq!(late, reference.late_events, "late drops differ ({label})");
    // Per-shard ingest accounting: one slot per shard worker, summing to
    // the routed (non-late-dropped) event count.
    let routed = events.len() as u64 - late;
    assert_eq!(
        shard_events.iter().sum::<u64>(),
        routed,
        "shard counters lose events ({label}): {shard_events:?}"
    );
    reference.per_query[0].len()
}

#[test]
fn adversarial_streams_are_worker_count_invariant() {
    // The deterministic sweep CI runs under `timeout`: every generator ×
    // worker counts {1, 2, 4, 8} × a degenerate and a default transport
    // batch. Liveness: each generator must actually produce results, or
    // the identity assertions above were vacuous.
    for wl in 0..4 {
        let mut results = 0usize;
        for workers in [1usize, 2, 4, 8] {
            for batch in [7usize, 256] {
                let label = format!("adversarial wl={wl} workers={workers} batch={batch}");
                results += watchdog(&label.clone(), move || {
                    diff_case(wl, 29, 600, workers, 37, batch)
                });
            }
        }
        assert!(results > 0, "workload {wl} emitted nothing anywhere");
    }
}

#[test]
fn skewed_keys_surface_as_shard_imbalance() {
    // The point of the skew generator: a hot key is a hot shard. With a
    // sharp power law the rank-1 user draws a large constant share of
    // the stream onto one shard, and the per-shard counters make that
    // visible — the spread is the observability contract this PR adds.
    watchdog("skew-imbalance", || {
        let cfg = SkewConfig {
            alpha: 1.5,
            events: 4_000,
            seed: 17,
            ..SkewConfig::default()
        };
        let registry = skew::registry();
        let run = Session::builder()
            .query(skew::count_query(50, 25).as_str())
            .workers(4)
            .build(&registry)
            .expect("session builds")
            .run(&skew::generate(&cfg));
        let counts = &run.shard_events;
        assert_eq!(counts.len(), 4, "one counter per shard: {counts:?}");
        assert_eq!(counts.iter().sum::<u64>(), cfg.events as u64);
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max - min > cfg.events as u64 / 20,
            "no visible imbalance under alpha=1.5: {counts:?}"
        );
    });
}

#[test]
fn churn_overflow_fires_identically_on_every_worker_count() {
    // The churn generator grows the interner without bound; with a
    // `key_limit` in the way, every worker count must (a) report the
    // same sticky overflow and (b) stay byte-identical on the *prefix*
    // semantics: events whose first-seen key exceeds a shard's limit are
    // dropped, everything already admitted keeps aggregating.
    watchdog("churn-overflow", || {
        let registry = churn::registry();
        let query = churn::count_query(40, 20);
        let events = churn::generate(&ChurnConfig {
            events: 800,
            seed: 3,
            ..ChurnConfig::default()
        });
        let distinct: std::collections::HashSet<&Value> =
            events.iter().map(|e| &e.attrs[0]).collect();
        let limit = 8u32;
        assert!(
            distinct.len() > 8 * limit as usize,
            "churn stream too tame for the cap: {} keys",
            distinct.len()
        );
        for workers in [1usize, 2, 4, 8] {
            let mut session = Session::builder()
                .query(query.as_str())
                .workers(workers)
                .config(EngineConfig {
                    key_limit: Some(limit),
                    ..EngineConfig::default()
                })
                .build(&registry)
                .expect("session builds");
            for e in &events {
                session.process(e);
            }
            let mut sink: Vec<TaggedResult> = Vec::new();
            session.finish_into(&mut sink);
            assert_eq!(
                session.key_overflow(),
                Some(limit),
                "workers={workers}: overflow not reported"
            );
            assert!(
                !sink.is_empty(),
                "workers={workers}: admitted keys vanished"
            );
        }
        // Uncapped, the same stream sails through on every width —
        // covered by `adversarial_streams_are_worker_count_invariant`;
        // here pin that *no* overflow is reported without a limit.
        let run = Session::builder()
            .query(query.as_str())
            .workers(4)
            .build(&registry)
            .expect("session builds")
            .run(&events);
        assert_eq!(run.per_query.len(), 1);
    });
}

#[test]
fn fraud_chains_are_found_and_worker_count_invariant() {
    // Near-zero selectivity with long Kleene closures: the planted
    // chains must be detected (no vacuous identity), and the match sets
    // must not depend on how the stream shards.
    watchdog("fraud-detect", || {
        let found = diff_case(3, 41, 1_000, 4, 64, 256);
        assert!(found > 0, "no planted fraud chain detected");
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_adversarial_streams_round_trip_the_pool(
        wl in 0usize..4,
        seed in 0u64..10_000,
        n in 100usize..500,
        workers_idx in 0usize..4,
        chunk in 1usize..60,
        batch_idx in 0usize..3,
    ) {
        // Randomized sweep with shrinking enabled: a failure minimizes
        // to the smallest hostile (generator, seed, n) triple.
        let workers = [1usize, 2, 4, 8][workers_idx];
        let batch = [1usize, 7, 256][batch_idx];
        let label = format!("prop wl={wl} seed={seed} n={n} workers={workers}");
        watchdog(&label.clone(), move || {
            diff_case(wl, seed, n, workers, chunk, batch);
        });
    }
}
