//! Property-based invariants of the core data structures and the engine:
//! parser round-trips, window arithmetic, aggregate consistency, and
//! cross-granularity agreement on randomized queries.

use cogra::core::run_to_completion;
use cogra::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------- parser

/// Generator for random surface patterns over types A..E.
fn arb_pattern() -> impl Strategy<Value = PatternExpr> {
    let leaf = (0u8..5).prop_map(|i| {
        let name = ["A", "B", "C", "D", "E"][i as usize];
        PatternExpr::leaf(name)
    });
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(PatternExpr::plus),
            inner.clone().prop_map(PatternExpr::star),
            inner.clone().prop_map(PatternExpr::opt),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(PatternExpr::Seq),
            proptest::collection::vec(inner, 2..3).prop_map(PatternExpr::Or),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pretty-printing a random pattern and re-parsing it yields an
    /// equivalent pattern (modulo the variable aliasing that printing
    /// normalizes away — we compare printed forms).
    #[test]
    fn pattern_display_reparse_fixpoint(p in arb_pattern()) {
        let text = format!("RETURN COUNT(*) PATTERN {p} WITHIN 10 SLIDE 5");
        let Ok(q) = parse(&text) else {
            // Patterns with duplicate variables parse but won't compile;
            // parsing itself must still succeed.
            return Err(TestCaseError::fail(format!("parse failed for {text}")));
        };
        let printed = q.to_string();
        let q2 = parse(&printed).map_err(|e| {
            TestCaseError::fail(format!("reparse of `{printed}`: {e}"))
        })?;
        prop_assert_eq!(q, q2);
    }

    /// Window membership is exactly interval containment, and the
    /// per-event window count never exceeds the ceil(w/s) bound.
    #[test]
    fn window_assignment_invariants(within in 1u64..200, slide_raw in 1u64..200, t in 0u64..5000) {
        let slide = slide_raw.min(within);
        let spec = WindowSpec::new(within, slide);
        let wids: Vec<_> = spec.windows_of(Timestamp(t)).collect();
        prop_assert!(!wids.is_empty(), "every event falls in some window");
        prop_assert!(wids.len() <= spec.windows_per_event());
        for w in &wids {
            let start = spec.window_start(*w);
            let end = spec.window_end(*w);
            prop_assert!(start.ticks() <= t && t < end.ticks());
        }
        // Windows not listed must not contain t.
        let max_wid = wids.last().unwrap().0;
        for k in (0..=max_wid + 2).map(cogra::events::WindowId) {
            let contains = spec.window_start(k).ticks() <= t && t < spec.window_end(k).ticks();
            prop_assert_eq!(contains, wids.contains(&k), "wid {}", k.0);
        }
    }
}

// ------------------------------------------------------- engine invariants

fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    for t in ["A", "B"] {
        r.register_type(t, vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
    }
    r
}

fn stream(raw: &[(bool, i64, i64)], reg: &TypeRegistry) -> Vec<Event> {
    let a = reg.id_of("A").unwrap();
    let b = reg.id_of("B").unwrap();
    let mut builder = EventBuilder::new();
    raw.iter()
        .enumerate()
        .map(|(i, &(is_b, g, v))| {
            builder.event(
                (i + 1) as u64,
                if is_b { b } else { a },
                vec![Value::Int(g), Value::Int(v)],
            )
        })
        .collect()
}

fn run_query(text: &str, events: &[Event]) -> Vec<cogra::core::WindowResult> {
    let reg = registry();
    let mut engine = CograEngine::from_text(text, &reg).unwrap();
    run_to_completion(&mut engine, events, usize::MAX).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// SUM / COUNT / AVG consistency: for every emitted group,
    /// AVG(A.v) == SUM(A.v) / COUNT(A) (§2.3: AVG is algebraic).
    #[test]
    fn avg_equals_sum_over_count(raw in proptest::collection::vec(
        (any::<bool>(), 0i64..2, 0i64..6), 1..24)) {
        let events = stream(&raw, &registry());
        let results = run_query(
            "RETURN g, SUM(A.v), COUNT(A), AVG(A.v) PATTERN SEQ(A+, B) \
             SEMANTICS ANY GROUP-BY g WITHIN 12 SLIDE 6",
            &events,
        );
        for r in &results {
            let (AggValue::Float(sum), AggValue::Count(cnt)) = (r.values[0], r.values[1]) else {
                // No A occurrences: all three must be the identity.
                prop_assert_eq!(r.values[2], AggValue::Null);
                continue;
            };
            match r.values[2] {
                AggValue::Float(avg) => {
                    prop_assert!((avg - sum / cnt as f64).abs() < 1e-9);
                }
                AggValue::Null => prop_assert_eq!(cnt, 0),
                other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
            }
        }
    }

    /// MIN <= MAX whenever both exist, and both lie within the value
    /// domain of the stream.
    #[test]
    fn min_le_max_within_domain(raw in proptest::collection::vec(
        (any::<bool>(), 0i64..2, -5i64..10), 1..24)) {
        let events = stream(&raw, &registry());
        let results = run_query(
            "RETURN g, MIN(A.v), MAX(A.v) PATTERN A+ \
             SEMANTICS ANY GROUP-BY g WITHIN 12 SLIDE 4",
            &events,
        );
        for r in &results {
            if let (AggValue::Float(lo), AggValue::Float(hi)) = (r.values[0], r.values[1]) {
                prop_assert!(lo <= hi);
                prop_assert!((-5.0..10.0).contains(&lo) && (-5.0..10.0).contains(&hi));
            }
        }
    }

    /// Drain timing is irrelevant to the final result: draining after
    /// every event or only at the end produces the same sorted output.
    #[test]
    fn drain_granularity_is_observationally_pure(raw in proptest::collection::vec(
        (any::<bool>(), 0i64..2, 0i64..6), 0..20)) {
        let reg = registry();
        let events = stream(&raw, &reg);
        let text = "RETURN g, COUNT(*) PATTERN SEQ(A+, B) SEMANTICS ANY \
                    GROUP-BY g WITHIN 8 SLIDE 2";
        let eager = run_query(text, &events);
        let mut lazy_engine = CograEngine::from_text(text, &reg).unwrap();
        for e in &events {
            lazy_engine.process(e); // never drain mid-stream
        }
        let mut lazy = lazy_engine.finish();
        cogra::core::WindowResult::sort(&mut lazy);
        prop_assert_eq!(eager, lazy);
    }

    /// Splitting the stream across parallel workers never changes the
    /// result (§8 stream partitioning).
    #[test]
    fn parallel_execution_is_deterministic(raw in proptest::collection::vec(
        (any::<bool>(), 0i64..4, 0i64..6), 0..24), workers in 1usize..6) {
        use cogra::core::{run_parallel, QueryRuntime};
        use std::sync::Arc;
        let reg = registry();
        let events = stream(&raw, &reg);
        let q = parse(
            "RETURN g, COUNT(*), MAX(A.v) PATTERN SEQ(A+, B) SEMANTICS ANY \
             GROUP-BY g WITHIN 10 SLIDE 5",
        ).unwrap();
        let rt = Arc::new(QueryRuntime::new(compile(&q, &reg).unwrap(), &reg));
        let base = run_parallel(&rt, &events, 1);
        let par = run_parallel(&rt, &events, workers);
        prop_assert_eq!(base.results, par.results);
    }

    /// Prefix monotonicity of COUNT(*) per window under ANY without
    /// negation: feeding more events never lowers an already-closed
    /// window's count — and a closed window's result never changes.
    #[test]
    fn closed_windows_are_immutable(raw in proptest::collection::vec(
        (any::<bool>(), 0i64..2, 0i64..6), 2..24), cut in 1usize..23) {
        let reg = registry();
        let events = stream(&raw, &reg);
        let cut = cut.min(events.len());
        let text = "RETURN g, COUNT(*) PATTERN A+ SEMANTICS ANY \
                    GROUP-BY g WITHIN 6 SLIDE 3";
        // Run on the prefix, record results of windows closed by the cut
        // watermark; run on the full stream; those windows must match.
        let full = run_query(text, &events);
        let mut engine = CograEngine::from_text(text, &reg).unwrap();
        let mut early = Vec::new();
        for e in &events[..cut] {
            engine.process(e);
            early.extend(engine.drain());
        }
        for r in &early {
            let in_full = full.iter().find(|f| f.window == r.window && f.group == r.group);
            prop_assert_eq!(Some(r), in_full, "closed window changed");
        }
    }
}
