//! The `csv::EventReader` error paths, as seen from every ingestion
//! surface. The CLI (`run_csv`) and the network front-end
//! (`INGEST` → `Session::ingest_csv`) share ONE decode path, so a given
//! malformed stream must produce the **same `IngestError`** on both —
//! asserted here by computing the expected error once (straight from
//! `Session::ingest_csv`, the shared site) and matching the CLI's stderr
//! and the server's `ERR` reply against it, byte for byte.
//!
//! Covered: a truncated row (field-count mismatch), a time-regressing
//! row without `.slack(n)`, and non-UTF-8 input (which each surface
//! rejects *before* the decode path — with its own transport's wording,
//! since `EventReader` itself only ever sees `&str`).

use cogra::prelude::*;
use std::path::PathBuf;
use std::process::Command;

const SCHEMA: &str = "type,attr,kind\n\
                      Measurement,patient,int\n\
                      Measurement,rate,int\n";

const QUERY: &str = "RETURN patient, COUNT(*)\n\
                     PATTERN Measurement M+\n\
                     SEMANTICS skip-till-any-match\n\
                     WHERE [patient]\n\
                     GROUP-BY patient\n\
                     WITHIN 100 SLIDE 100\n";

/// A row with 2 fields where 4 are declared.
const TRUNCATED: &str = "type,time,patient,rate\n\
                         Measurement,1,7,60\n\
                         Measurement,2\n";

/// Time regresses 5 → 3 with no slack to repair it.
const OUT_OF_ORDER: &str = "type,time,patient,rate\n\
                            Measurement,5,7,60\n\
                            Measurement,3,7,61\n";

/// Three distinct patients — one more than the `--key-limit 2` cap the
/// key-overflow test configures.
const THREE_PATIENTS: &str = "type,time,patient,rate\n\
                              Measurement,1,1,60\n\
                              Measurement,2,2,61\n\
                              Measurement,3,3,62\n";

fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    r.register_type(
        "Measurement",
        vec![("patient", ValueKind::Int), ("rate", ValueKind::Int)],
    );
    r
}

/// The expected error, computed once at the shared site.
fn expected_ingest_error(csv: &str) -> String {
    let mut session = Session::builder()
        .query(QUERY)
        .build(&registry())
        .expect("query builds");
    session
        .ingest_csv(csv, &registry())
        .expect_err("stream is malformed")
        .to_string()
}

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(name: &str, events: &[u8]) -> Fixture {
        let dir = std::env::temp_dir().join(format!("cogra-err-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("schema.csv"), SCHEMA).unwrap();
        std::fs::write(dir.join("query.cep"), QUERY).unwrap();
        std::fs::write(dir.join("stream.csv"), events).unwrap();
        Fixture { dir }
    }

    /// Run the CLI over the fixture; return (success, stderr).
    fn run_cli(&self) -> (bool, String) {
        self.run_cli_with(&[])
    }

    /// Like [`Fixture::run_cli`], with extra flags appended.
    fn run_cli_with(&self, extra: &[&str]) -> (bool, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_cogra-run"))
            .arg("--schema")
            .arg(self.dir.join("schema.csv"))
            .arg("--events")
            .arg(self.dir.join("stream.csv"))
            .arg("--query")
            .arg(self.dir.join("query.cep"))
            .args(extra)
            .output()
            .expect("binary runs");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Send `csv` through a fresh server's INGEST; return the ERR payload.
fn server_ingest_error(csv: &str) -> String {
    let server = Server::spawn(
        Session::builder().query(QUERY),
        registry(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let err = client
        .ingest(csv)
        .expect("io")
        .expect_err("stream is malformed");
    server.shutdown();
    err
}

#[test]
fn truncated_row_reports_the_same_error_on_cli_and_server() {
    let expected = expected_ingest_error(TRUNCATED);
    assert!(
        expected.contains("csv line 3") && expected.contains("expected 4 fields, found 2"),
        "{expected}"
    );

    let (ok, stderr) = Fixture::new("truncated", TRUNCATED.as_bytes()).run_cli();
    assert!(!ok);
    assert!(
        stderr.contains(&expected),
        "cli: {stderr}\nwant: {expected}"
    );

    let server_err = server_ingest_error(TRUNCATED);
    assert_eq!(server_err, expected, "server vs shared decode path");
}

#[test]
fn out_of_order_without_slack_reports_the_same_error_on_cli_and_server() {
    let expected = expected_ingest_error(OUT_OF_ORDER);
    assert!(
        expected.contains("arrived after watermark") && expected.contains("--slack"),
        "{expected}"
    );

    let (ok, stderr) = Fixture::new("ooo", OUT_OF_ORDER.as_bytes()).run_cli();
    assert!(!ok);
    assert!(
        stderr.contains(&expected),
        "cli: {stderr}\nwant: {expected}"
    );

    let server_err = server_ingest_error(OUT_OF_ORDER);
    assert_eq!(server_err, expected, "server vs shared decode path");

    // With slack the same stream is repaired, on both surfaces alike —
    // the error is about the missing reorderer, not the data.
    let mut session = Session::builder()
        .query(QUERY)
        .slack(4)
        .build(&registry())
        .expect("query builds");
    assert_eq!(session.ingest_csv(OUT_OF_ORDER, &registry()), Ok(2));
}

#[test]
fn key_limit_overflow_reports_the_same_error_on_cli_and_server() {
    // The shared site: a session capped at 2 distinct partition keys
    // fails the third patient's first event with a typed error instead
    // of panicking inside the interner.
    let capped = || {
        Session::builder().query(QUERY).config(EngineConfig {
            key_limit: Some(2),
            ..EngineConfig::default()
        })
    };
    let expected = capped()
        .build(&registry())
        .expect("query builds")
        .ingest_csv(THREE_PATIENTS, &registry())
        .expect_err("third distinct key overflows")
        .to_string();
    assert!(
        expected.contains("limit of 2 distinct partition keys") && expected.contains("--key-limit"),
        "{expected}"
    );

    let fixture = Fixture::new("keylimit", THREE_PATIENTS.as_bytes());
    let (ok, stderr) = fixture.run_cli_with(&["--key-limit", "2"]);
    assert!(!ok);
    assert!(
        stderr.contains(&expected),
        "cli: {stderr}\nwant: {expected}"
    );

    // A limit the stream fits under runs clean on the same fixture.
    let (ok, stderr) = fixture.run_cli_with(&["--key-limit", "3"]);
    assert!(ok, "cli: {stderr}");

    // Server: the same capped builder behind INGEST answers with the
    // same error text, and the connection survives to serve STATS.
    let server = Server::spawn(capped(), registry(), "127.0.0.1:0", ServerConfig::default())
        .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let err = client
        .ingest(THREE_PATIENTS)
        .expect("io")
        .expect_err("third distinct key overflows");
    assert_eq!(err, expected, "server vs shared decode path");
    let stats = client.stats().expect("io").expect("stats still served");
    assert!(!stats.finished);
    server.shutdown();

    // Pool mode: the limit caps each shard's own interner, so hash
    // spreading means 3 keys over 2 shards may fit. Feed enough distinct
    // keys that every shard must overflow, and check the overflow is
    // surfaced by finish (detection is at drain/finish boundaries in
    // pool mode, so the sticky accessor is the contract there, not
    // ingest_csv's row granularity).
    let mut many = String::from("type,time,patient,rate\n");
    for patient in 1..=32 {
        many.push_str(&format!("Measurement,{patient},{patient},60\n"));
    }
    let mut pooled = capped()
        .workers(2)
        .build(&registry())
        .expect("query builds");
    let outcome = pooled.ingest_csv(&many, &registry());
    let mut sink: Vec<TaggedResult> = Vec::new();
    pooled.finish_into(&mut sink);
    assert!(
        outcome.is_err() || pooled.key_overflow() == Some(2),
        "pool mode reports the overflow by finish: {outcome:?}"
    );
}

#[test]
fn non_utf8_input_is_rejected_before_the_decode_path() {
    // EventReader only ever sees &str, so each surface rejects bad bytes
    // at its transport boundary — both must say so, naming UTF-8.
    let mut bad = Vec::from("type,time,patient,rate\nMeasurement,1,7,");
    bad.extend_from_slice(&[0xff, 0xfe, b'\n']);

    let (ok, stderr) = Fixture::new("utf8", &bad).run_cli();
    assert!(!ok);
    assert!(stderr.contains("UTF-8"), "cli: {stderr}");

    // Server: a raw INGEST block carrying the same bytes.
    use std::io::{BufRead, BufReader, Write};
    let server = Server::spawn(
        Session::builder().query(QUERY),
        registry(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("server starts");
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connects");
    let mut block = Vec::from("INGEST 2\n");
    block.extend_from_slice(&bad);
    raw.write_all(&block).expect("write");
    let mut reply = String::new();
    BufReader::new(raw.try_clone().expect("clone"))
        .read_line(&mut reply)
        .expect("read");
    assert!(
        reply.starts_with("ERR") && reply.contains("UTF-8"),
        "server: {reply}"
    );
    server.shutdown();
}
