//! End-to-end tests of the `cogra-run` CLI: schema + CSV stream + query
//! file in, window results out.

use std::path::PathBuf;
use std::process::Command;

const SCHEMA: &str = "type,attr,kind\n\
                      Measurement,patient,int\n\
                      Measurement,activity,str\n\
                      Measurement,rate,int\n";

const QUERY: &str = "RETURN patient, COUNT(*), MIN(M.rate), MAX(M.rate)\n\
                     PATTERN Measurement M+\n\
                     SEMANTICS contiguous\n\
                     WHERE [patient] AND M.rate < NEXT(M).rate AND M.activity = passive\n\
                     GROUP-BY patient\n\
                     WITHIN 100 SLIDE 100\n";

/// Patient 7: increasing run 60,62,64 (6 trends), an active reading
/// resets, then 61,66 (3 trends) → 9; patient 8: 70,75 → 3.
const STREAM: &str = "type,time,patient,activity,rate\n\
                      Measurement,1,7,passive,60\n\
                      Measurement,3,7,passive,64\n\
                      Measurement,2,7,passive,62\n\
                      Measurement,4,7,active3,90\n\
                      Measurement,5,7,passive,61\n\
                      Measurement,6,7,passive,66\n\
                      Measurement,7,8,passive,70\n\
                      Measurement,8,8,passive,75\n";

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!("cogra-cli-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("schema.csv"), SCHEMA).unwrap();
        std::fs::write(dir.join("query.cep"), QUERY).unwrap();
        std::fs::write(dir.join("stream.csv"), STREAM).unwrap();
        Fixture { dir }
    }

    fn run(&self, extra: &[&str]) -> (bool, String, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_cogra-run"))
            .arg("--schema")
            .arg(self.dir.join("schema.csv"))
            .arg("--events")
            .arg(self.dir.join("stream.csv"))
            .arg("--query")
            .arg(self.dir.join("query.cep"))
            .args(extra)
            .output()
            .expect("binary runs");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn q1_over_csv_with_reordering() {
    let f = Fixture::new("reorder");
    let (ok, stdout, stderr) = f.run(&["--slack", "3"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("w0 [7] → 9 60.0000 66.0000"), "{stdout}");
    assert!(stdout.contains("w0 [8] → 3 70.0000 75.0000"), "{stdout}");
}

#[test]
fn disordered_input_rejected_without_slack() {
    let f = Fixture::new("strict");
    let (ok, _, stderr) = f.run(&[]);
    assert!(!ok);
    assert!(stderr.contains("--slack"), "{stderr}");
}

#[test]
fn engines_agree_through_the_cli() {
    let f = Fixture::new("engines");
    let (ok, cogra_out, _) = f.run(&["--slack", "3", "--engine", "cogra"]);
    assert!(ok);
    for engine in ["sase", "oracle"] {
        let (ok, out, stderr) = f.run(&["--slack", "3", "--engine", engine]);
        assert!(ok, "{engine}: {stderr}");
        assert_eq!(out, cogra_out, "{engine} output differs");
    }
}

#[test]
fn unsupported_engine_fails_cleanly() {
    let f = Fixture::new("unsupported");
    // GRETA cannot run a contiguous-semantics query (Table 9).
    let (ok, _, stderr) = f.run(&["--slack", "3", "--engine", "greta"]);
    assert!(!ok);
    assert!(stderr.contains("skip-till-any-match"), "{stderr}");
}

#[test]
fn explain_and_dot_render() {
    let f = Fixture::new("explain");
    let (ok, _, stderr) = f.run(&["--slack", "3", "--explain"]);
    assert!(ok);
    assert!(stderr.contains("granularity: pattern"), "{stderr}");
    let (ok, stdout, _) = f.run(&["--dot"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph pattern {"), "{stdout}");
}

#[test]
fn workers_report_effective_shard_count() {
    // The fixture query groups by patient, so all requested shards are
    // usable — the summary reports the requested count.
    let f = Fixture::new("workers");
    let (ok, grouped_out, stderr) = f.run(&["--slack", "3", "--workers", "2"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("2 workers"), "{stderr}");
    let (_, sequential_out, _) = f.run(&["--slack", "3"]);
    assert_eq!(
        grouped_out, sequential_out,
        "sharding must not change results"
    );

    // A query with no GROUP-BY cannot shard: requested 4, effective 1.
    let f = Fixture::new("workers-nogroup");
    std::fs::write(
        f.dir.join("query.cep"),
        "RETURN COUNT(*) PATTERN Measurement M+ SEMANTICS skip-till-any-match \
         WITHIN 100 SLIDE 100\n",
    )
    .unwrap();
    let (ok, _, stderr) = f.run(&["--slack", "3", "--workers", "4"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("1 of 4 workers effective"), "{stderr}");
}

#[test]
fn serve_and_connect_round_trip() {
    use std::io::BufRead;
    use std::process::Stdio;

    let f = Fixture::new("serve");
    // The reference: the plain run mode over the same inputs.
    let (ok, local_out, stderr) = f.run(&["--slack", "3"]);
    assert!(ok, "stderr: {stderr}");

    // Serve the same session on an ephemeral loopback port...
    let mut serve = Command::new(env!("CARGO_BIN_EXE_cogra-run"))
        .arg("serve")
        .arg("--schema")
        .arg(f.dir.join("schema.csv"))
        .arg("--query")
        .arg(f.dir.join("query.cep"))
        .args(["--slack", "3", "--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve starts");
    let mut port_line = String::new();
    std::io::BufReader::new(serve.stdout.take().expect("piped stdout"))
        .read_line(&mut port_line)
        .expect("serve prints its address");
    let addr = port_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve handshake `{port_line}`"))
        .to_string();

    // ...and replay the recorded stream into it with the connect mode.
    let connect = Command::new(env!("CARGO_BIN_EXE_cogra-run"))
        .arg("connect")
        .args(["--addr", &addr])
        .arg("--events")
        .arg(f.dir.join("stream.csv"))
        .args(["--chunk", "3"])
        .output()
        .expect("connect runs");
    let connect_err = String::from_utf8_lossy(&connect.stderr).into_owned();
    assert!(connect.status.success(), "stderr: {connect_err}");

    // Results are pushed in emission order; the run mode prints them
    // sorted — the sorted line sets must be identical.
    let sort = |s: &str| {
        let mut lines: Vec<String> = s.lines().map(str::to_string).collect();
        lines.sort();
        lines
    };
    let remote_out = String::from_utf8_lossy(&connect.stdout).into_owned();
    assert_eq!(sort(&remote_out), sort(&local_out), "socket vs in-process");
    assert!(
        connect_err.contains("late event(s) dropped") || !connect_err.contains("reorder"),
        "{connect_err}"
    );

    // FINISH ends the session and the serve process with it.
    let status = serve.wait().expect("serve exits after FINISH");
    assert!(status.success());
}

#[test]
fn serve_refuses_nonlocal_listen() {
    let f = Fixture::new("serve-guard");
    let out = Command::new(env!("CARGO_BIN_EXE_cogra-run"))
        .arg("serve")
        .arg("--schema")
        .arg(f.dir.join("schema.csv"))
        .arg("--query")
        .arg(f.dir.join("query.cep"))
        .args(["--listen", "0.0.0.0:0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("non-loopback"), "{stderr}");
}

/// Spawn `cogra-run serve` over the fixture's schema/query on `listen`,
/// returning the child and the address it actually bound (parsed from
/// the `listening on …` handshake line).
fn spawn_serve(f: &Fixture, listen: &str, extra: &[&str]) -> (std::process::Child, String) {
    use std::io::BufRead;
    use std::process::Stdio;
    let mut serve = Command::new(env!("CARGO_BIN_EXE_cogra-run"))
        .arg("serve")
        .arg("--schema")
        .arg(f.dir.join("schema.csv"))
        .arg("--query")
        .arg(f.dir.join("query.cep"))
        .args(["--slack", "3", "--listen", listen])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut port_line = String::new();
    std::io::BufReader::new(serve.stdout.take().expect("piped stdout"))
        .read_line(&mut port_line)
        .expect("serve prints its address");
    let addr = port_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve handshake `{port_line}`"))
        .to_string();
    (serve, addr)
}

/// A client that races its server's startup wins with `--retry`: the
/// connect mode is launched against a port nobody listens on yet, and
/// the server arrives only after the first refusals.
#[test]
fn connect_retries_until_the_server_is_up() {
    use std::process::Stdio;

    let f = Fixture::new("retry");
    let (ok, local_out, stderr) = f.run(&["--slack", "3"]);
    assert!(ok, "stderr: {stderr}");

    // Reserve a port the OS considers free, then release it for serve.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    drop(listener);

    let connect = Command::new(env!("CARGO_BIN_EXE_cogra-run"))
        .arg("connect")
        .args(["--addr", &addr])
        .arg("--events")
        .arg(f.dir.join("stream.csv"))
        .args(["--chunk", "3", "--retry", "40", "--backoff-ms", "10"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("connect starts");

    // Let the client eat a few refused dials before the server exists.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let (mut serve, _) = spawn_serve(&f, &addr, &[]);

    let out = connect.wait_with_output().expect("connect finishes");
    let connect_err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "stderr: {connect_err}");
    let sort = |s: &str| {
        let mut lines: Vec<String> = s.lines().map(str::to_string).collect();
        lines.sort();
        lines
    };
    let remote_out = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(sort(&remote_out), sort(&local_out), "retried run diverged");
    assert!(serve.wait().expect("serve exits after FINISH").success());
}

/// `--read-timeout` disconnects a command connection that goes silent:
/// the server answers with one typed `ERR` line and closes, instead of
/// pinning a thread on a dead client forever.
#[test]
fn serve_read_timeout_disconnects_silent_clients() {
    use std::io::BufRead;

    let f = Fixture::new("read-timeout");
    let (mut serve, addr) = spawn_serve(&f, "127.0.0.1:0", &["--read-timeout", "0.3"]);

    // A silent client: connect, say nothing, wait for the verdict.
    let stream = std::net::TcpStream::connect(&addr).expect("server reachable");
    let mut line = String::new();
    std::io::BufReader::new(stream)
        .read_line(&mut line)
        .expect("server replies before closing");
    assert_eq!(line.trim(), "ERR idle connection timed out", "{line}");

    serve.kill().expect("serve still running");
    let _ = serve.wait();
}

/// SIGTERM is a graceful shutdown: the server drains, snapshots to the
/// `--snapshot-on-term` path and exits zero — and a `--restore` run over
/// the snapshot prints exactly what an uninterrupted run would have.
#[cfg(unix)]
#[test]
fn sigterm_drains_snapshots_and_exits_cleanly() {
    use std::io::{BufRead, BufReader, Read as _, Write as _};

    let f = Fixture::new("sigterm");
    let (ok, local_out, stderr) = f.run(&["--slack", "3"]);
    assert!(ok, "stderr: {stderr}");

    let snap = f.dir.join("term.cogra");
    let snap = snap.to_string_lossy().into_owned();
    let (mut serve, addr) = spawn_serve(&f, "127.0.0.1:0", &["--snapshot-on-term", &snap]);

    // Ingest the whole stream over a raw connection — no FINISH, the
    // session must still be live when the signal lands.
    let mut stream = std::net::TcpStream::connect(&addr).expect("server reachable");
    let lines = STREAM.lines().count();
    write!(stream, "INGEST {lines}\n{STREAM}").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.starts_with("OK "), "{reply}");
    writeln!(stream, "QUIT").unwrap();
    drop(stream);

    let term = Command::new("kill")
        .args(["-TERM", &serve.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(term.success());
    let status = serve.wait().expect("serve exits on SIGTERM");
    assert!(status.success(), "SIGTERM exit must be clean");
    let mut serve_err = String::new();
    serve
        .stderr
        .take()
        .expect("piped stderr")
        .read_to_string(&mut serve_err)
        .unwrap();
    assert!(
        serve_err.contains(&format!("SIGTERM: snapshot → {snap}")),
        "{serve_err}"
    );

    // Nothing was final at the watermark, so the restored session holds
    // every window: a restore + empty tail reprints the whole run.
    std::fs::write(f.dir.join("empty.csv"), "type,time,patient,activity,rate\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_cogra-run"))
        .arg("--schema")
        .arg(f.dir.join("schema.csv"))
        .arg("--events")
        .arg(f.dir.join("empty.csv"))
        .args(["--restore", &snap])
        .output()
        .expect("restore runs");
    let restore_err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "stderr: {restore_err}");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        local_out,
        "the snapshot lost state"
    );
}

/// One failure, one message: a snapshot aimed at a missing directory
/// produces byte-identical error text from the CLI's `--checkpoint`
/// (after its `error: ` prefix) and the server's `SNAPSHOT` verb (after
/// its `ERR ` prefix) — both route through the same atomic writer.
#[test]
fn snapshot_error_text_matches_between_cli_and_server() {
    use std::io::{BufRead, BufReader, Write as _};

    let f = Fixture::new("snap-parity");
    let path = f.dir.join("missing").join("snap.cogra");
    let path = path.to_string_lossy().into_owned();

    let (ok, _, stderr) = f.run(&["--slack", "3", "--checkpoint", &path]);
    assert!(!ok, "a missing directory must fail the checkpoint");
    let cli_text = stderr
        .lines()
        .find_map(|l| l.strip_prefix("error: "))
        .unwrap_or_else(|| panic!("no error line in {stderr}"))
        .to_string();
    assert!(
        cli_text.starts_with(&format!("{path}: i/o error: ")),
        "{cli_text}"
    );

    let (mut serve, addr) = spawn_serve(&f, "127.0.0.1:0", &[]);
    let mut stream = std::net::TcpStream::connect(&addr).expect("server reachable");
    writeln!(stream, "SNAPSHOT {path}").unwrap();
    let mut reply = String::new();
    BufReader::new(stream.try_clone().unwrap())
        .read_line(&mut reply)
        .unwrap();
    let server_text = reply
        .trim()
        .strip_prefix("ERR ")
        .unwrap_or_else(|| panic!("expected ERR, got {reply}"))
        .to_string();
    assert_eq!(server_text, cli_text, "CLI and server error text diverged");

    serve.kill().expect("serve still running");
    let _ = serve.wait();
}

#[test]
fn bad_arguments_report_errors() {
    let out = Command::new(env!("CARGO_BIN_EXE_cogra-run"))
        .arg("--nonsense")
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown argument"));
}
