//! End-to-end tests of the `cogra-run` CLI: schema + CSV stream + query
//! file in, window results out.

use std::path::PathBuf;
use std::process::Command;

const SCHEMA: &str = "type,attr,kind\n\
                      Measurement,patient,int\n\
                      Measurement,activity,str\n\
                      Measurement,rate,int\n";

const QUERY: &str = "RETURN patient, COUNT(*), MIN(M.rate), MAX(M.rate)\n\
                     PATTERN Measurement M+\n\
                     SEMANTICS contiguous\n\
                     WHERE [patient] AND M.rate < NEXT(M).rate AND M.activity = passive\n\
                     GROUP-BY patient\n\
                     WITHIN 100 SLIDE 100\n";

/// Patient 7: increasing run 60,62,64 (6 trends), an active reading
/// resets, then 61,66 (3 trends) → 9; patient 8: 70,75 → 3.
const STREAM: &str = "type,time,patient,activity,rate\n\
                      Measurement,1,7,passive,60\n\
                      Measurement,3,7,passive,64\n\
                      Measurement,2,7,passive,62\n\
                      Measurement,4,7,active3,90\n\
                      Measurement,5,7,passive,61\n\
                      Measurement,6,7,passive,66\n\
                      Measurement,7,8,passive,70\n\
                      Measurement,8,8,passive,75\n";

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!("cogra-cli-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("schema.csv"), SCHEMA).unwrap();
        std::fs::write(dir.join("query.cep"), QUERY).unwrap();
        std::fs::write(dir.join("stream.csv"), STREAM).unwrap();
        Fixture { dir }
    }

    fn run(&self, extra: &[&str]) -> (bool, String, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_cogra-run"))
            .arg("--schema")
            .arg(self.dir.join("schema.csv"))
            .arg("--events")
            .arg(self.dir.join("stream.csv"))
            .arg("--query")
            .arg(self.dir.join("query.cep"))
            .args(extra)
            .output()
            .expect("binary runs");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn q1_over_csv_with_reordering() {
    let f = Fixture::new("reorder");
    let (ok, stdout, stderr) = f.run(&["--slack", "3"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("w0 [7] → 9 60.0000 66.0000"), "{stdout}");
    assert!(stdout.contains("w0 [8] → 3 70.0000 75.0000"), "{stdout}");
}

#[test]
fn disordered_input_rejected_without_slack() {
    let f = Fixture::new("strict");
    let (ok, _, stderr) = f.run(&[]);
    assert!(!ok);
    assert!(stderr.contains("--slack"), "{stderr}");
}

#[test]
fn engines_agree_through_the_cli() {
    let f = Fixture::new("engines");
    let (ok, cogra_out, _) = f.run(&["--slack", "3", "--engine", "cogra"]);
    assert!(ok);
    for engine in ["sase", "oracle"] {
        let (ok, out, stderr) = f.run(&["--slack", "3", "--engine", engine]);
        assert!(ok, "{engine}: {stderr}");
        assert_eq!(out, cogra_out, "{engine} output differs");
    }
}

#[test]
fn unsupported_engine_fails_cleanly() {
    let f = Fixture::new("unsupported");
    // GRETA cannot run a contiguous-semantics query (Table 9).
    let (ok, _, stderr) = f.run(&["--slack", "3", "--engine", "greta"]);
    assert!(!ok);
    assert!(stderr.contains("skip-till-any-match"), "{stderr}");
}

#[test]
fn explain_and_dot_render() {
    let f = Fixture::new("explain");
    let (ok, _, stderr) = f.run(&["--slack", "3", "--explain"]);
    assert!(ok);
    assert!(stderr.contains("granularity: pattern"), "{stderr}");
    let (ok, stdout, _) = f.run(&["--dot"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph pattern {"), "{stdout}");
}

#[test]
fn workers_report_effective_shard_count() {
    // The fixture query groups by patient, so all requested shards are
    // usable — the summary reports the requested count.
    let f = Fixture::new("workers");
    let (ok, grouped_out, stderr) = f.run(&["--slack", "3", "--workers", "2"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("2 workers"), "{stderr}");
    let (_, sequential_out, _) = f.run(&["--slack", "3"]);
    assert_eq!(
        grouped_out, sequential_out,
        "sharding must not change results"
    );

    // A query with no GROUP-BY cannot shard: requested 4, effective 1.
    let f = Fixture::new("workers-nogroup");
    std::fs::write(
        f.dir.join("query.cep"),
        "RETURN COUNT(*) PATTERN Measurement M+ SEMANTICS skip-till-any-match \
         WITHIN 100 SLIDE 100\n",
    )
    .unwrap();
    let (ok, _, stderr) = f.run(&["--slack", "3", "--workers", "4"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("1 of 4 workers effective"), "{stderr}");
}

#[test]
fn serve_and_connect_round_trip() {
    use std::io::BufRead;
    use std::process::Stdio;

    let f = Fixture::new("serve");
    // The reference: the plain run mode over the same inputs.
    let (ok, local_out, stderr) = f.run(&["--slack", "3"]);
    assert!(ok, "stderr: {stderr}");

    // Serve the same session on an ephemeral loopback port...
    let mut serve = Command::new(env!("CARGO_BIN_EXE_cogra-run"))
        .arg("serve")
        .arg("--schema")
        .arg(f.dir.join("schema.csv"))
        .arg("--query")
        .arg(f.dir.join("query.cep"))
        .args(["--slack", "3", "--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve starts");
    let mut port_line = String::new();
    std::io::BufReader::new(serve.stdout.take().expect("piped stdout"))
        .read_line(&mut port_line)
        .expect("serve prints its address");
    let addr = port_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve handshake `{port_line}`"))
        .to_string();

    // ...and replay the recorded stream into it with the connect mode.
    let connect = Command::new(env!("CARGO_BIN_EXE_cogra-run"))
        .arg("connect")
        .args(["--addr", &addr])
        .arg("--events")
        .arg(f.dir.join("stream.csv"))
        .args(["--chunk", "3"])
        .output()
        .expect("connect runs");
    let connect_err = String::from_utf8_lossy(&connect.stderr).into_owned();
    assert!(connect.status.success(), "stderr: {connect_err}");

    // Results are pushed in emission order; the run mode prints them
    // sorted — the sorted line sets must be identical.
    let sort = |s: &str| {
        let mut lines: Vec<String> = s.lines().map(str::to_string).collect();
        lines.sort();
        lines
    };
    let remote_out = String::from_utf8_lossy(&connect.stdout).into_owned();
    assert_eq!(sort(&remote_out), sort(&local_out), "socket vs in-process");
    assert!(
        connect_err.contains("late event(s) dropped") || !connect_err.contains("reorder"),
        "{connect_err}"
    );

    // FINISH ends the session and the serve process with it.
    let status = serve.wait().expect("serve exits after FINISH");
    assert!(status.success());
}

#[test]
fn serve_refuses_nonlocal_listen() {
    let f = Fixture::new("serve-guard");
    let out = Command::new(env!("CARGO_BIN_EXE_cogra-run"))
        .arg("serve")
        .arg("--schema")
        .arg(f.dir.join("schema.csv"))
        .arg("--query")
        .arg(f.dir.join("query.cep"))
        .args(["--listen", "0.0.0.0:0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("non-loopback"), "{stderr}");
}

#[test]
fn bad_arguments_report_errors() {
    let out = Command::new(env!("CARGO_BIN_EXE_cogra-run"))
        .arg("--nonsense")
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown argument"));
}
