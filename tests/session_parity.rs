//! Parity: the [`Session`] facade must be observationally identical to
//! the direct engine entry points (`run_to_completion`, `run_parallel`,
//! manual `Reorderer` plumbing) it replaced — byte-identical
//! `WindowResult`s on the evaluation's stock and transport workloads, in
//! every configuration the builder offers.

use cogra::core::QueryRuntime;
use cogra::events::Reorderer;
use cogra::prelude::*;
use cogra::workloads::{stock, transport, StockConfig, TransportConfig};
use std::sync::Arc;

fn stock_setup() -> (TypeRegistry, Vec<Event>, String) {
    let registry = stock::registry();
    let events = stock::generate(&StockConfig {
        events: 240,
        ..Default::default()
    });
    let query = stock::q3_query_no_adjacent(60, 30);
    (registry, events, query)
}

fn transport_setup() -> (TypeRegistry, Vec<Event>, String) {
    let registry = transport::registry();
    let events = transport::generate(&TransportConfig {
        events: 600,
        ..Default::default()
    });
    let query = transport::grouping_query(120, 60);
    (registry, events, query)
}

fn direct(
    kind: EngineKind,
    query: &str,
    registry: &TypeRegistry,
    events: &[Event],
) -> Vec<WindowResult> {
    let parsed = parse(query).expect("query parses");
    let mut engine = kind
        .build(&parsed, registry, &EngineConfig::default())
        .expect("engine supports query");
    run_to_completion(engine.as_mut(), events, 64).0
}

fn session(kind: EngineKind, query: &str, registry: &TypeRegistry, events: &[Event]) -> SessionRun {
    Session::builder()
        .query(query)
        .engine(kind)
        .build(registry)
        .expect("session builds")
        .run(events)
}

#[test]
fn single_query_matches_run_to_completion_on_stock() {
    let (registry, events, query) = stock_setup();
    for kind in [
        EngineKind::Cogra,
        EngineKind::Sase,
        EngineKind::Greta,
        EngineKind::Aseq,
    ] {
        let expected = direct(kind, &query, &registry, &events);
        let run = session(kind, &query, &registry, &events);
        assert!(!expected.is_empty(), "{kind}: workload produces results");
        assert_eq!(run.per_query, vec![expected], "{kind}");
    }
}

#[test]
fn single_query_matches_run_to_completion_on_transport() {
    let (registry, events, query) = transport_setup();
    for kind in [EngineKind::Cogra, EngineKind::Sase] {
        let expected = direct(kind, &query, &registry, &events);
        let run = session(kind, &query, &registry, &events);
        assert!(!expected.is_empty(), "{kind}: workload produces results");
        assert_eq!(run.per_query, vec![expected], "{kind}");
    }
}

#[test]
fn multi_query_session_matches_individual_runs() {
    let (registry, events, _) = transport_setup();
    let queries = [
        transport::grouping_query(120, 60),
        transport::next_query(120, 60),
    ];
    let run = Session::builder()
        .query(queries[0].as_str())
        .query(queries[1].as_str())
        .build(&registry)
        .expect("session builds")
        .run(&events);
    assert_eq!(run.per_query.len(), 2);
    for (i, q) in queries.iter().enumerate() {
        let expected = direct(EngineKind::Cogra, q, &registry, &events);
        assert_eq!(run.per_query[i], expected, "query {i}");
    }
}

/// Deterministically disorder a stream: reverse blocks of `block` events.
fn disorder(events: &[Event], block: usize) -> Vec<Event> {
    let mut out = Vec::with_capacity(events.len());
    for chunk in events.chunks(block) {
        out.extend(chunk.iter().rev().cloned());
    }
    out
}

#[test]
fn slack_session_matches_manual_reorder_pipeline() {
    let (registry, events, query) = transport_setup();
    let shuffled = disorder(&events, 5);
    for slack in [0, 3, 50] {
        // The replaced pipeline: manual Reorderer, then run_to_completion.
        let mut reorderer = Reorderer::new(slack);
        let mut repaired = Vec::with_capacity(shuffled.len());
        for e in &shuffled {
            reorderer.push(e.clone(), &mut repaired);
        }
        reorderer.flush(&mut repaired);
        let expected = direct(EngineKind::Cogra, &query, &registry, &repaired);

        let run = Session::builder()
            .query(query.as_str())
            .slack(slack)
            .build(&registry)
            .expect("session builds")
            .run(&shuffled);
        assert_eq!(run.per_query, vec![expected], "slack={slack}");
        assert_eq!(run.late_events, reorderer.late_events(), "slack={slack}");
    }
}

#[test]
fn workers_session_matches_run_parallel() {
    let (registry, events, query) = transport_setup();
    let parsed = parse(&query).expect("query parses");
    let rt = Arc::new(QueryRuntime::new(
        compile(&parsed, &registry).expect("query compiles"),
        &registry,
    ));
    for workers in [2, 4, 8] {
        let expected = run_parallel(&rt, &events, workers);
        let run = Session::builder()
            .query(query.as_str())
            .workers(workers)
            .build(&registry)
            .expect("session builds")
            .run(&events);
        assert_eq!(run.per_query, vec![expected.results], "workers={workers}");
        assert_eq!(run.workers, expected.workers, "workers={workers}");
    }
}

#[test]
fn one_worker_equals_many_workers() {
    let (registry, events, query) = transport_setup();
    let base = session(EngineKind::Cogra, &query, &registry, &events);
    for workers in [2, 4, 8] {
        let sharded = Session::builder()
            .query(query.as_str())
            .workers(workers)
            .build(&registry)
            .expect("session builds")
            .run(&events);
        assert_eq!(sharded.per_query, base.per_query, "workers={workers}");
    }
}

/// Incremental emission under sharded execution: every mid-stream drain
/// must emit a *prefix-consistent* slice of the final result set — only
/// results that survive to the end (subset), and *all* of them for every
/// window that closed at or before the drain's watermark (completeness).
#[test]
fn workers_drains_are_prefix_consistent_and_complete() {
    let (registry, events, query) = transport_setup();
    let expected = direct(EngineKind::Cogra, &query, &registry, &events);
    // transport_setup uses grouping_query(120, 60).
    let spec = WindowSpec::new(120, 60);
    for workers in [2, 4, 8] {
        let mut session = Session::builder()
            .query(query.as_str())
            .workers(workers)
            .build(&registry)
            .expect("session builds");
        let mut emitted: Vec<WindowResult> = Vec::new();
        let mut drains_with_output = 0usize;
        for (i, e) in events.iter().enumerate() {
            session.process(e);
            if i % 25 == 24 {
                let before = emitted.len();
                session.drain_into(&mut emitted);
                if emitted.len() > before {
                    drains_with_output += 1;
                }
                for r in &emitted[before..] {
                    assert!(
                        expected.contains(r),
                        "workers={workers}: drained result not in final set: {r}"
                    );
                }
                let watermark = session.watermark();
                if let Some(last_closed) = spec.last_closed(watermark) {
                    for r in expected.iter().filter(|r| r.window <= last_closed) {
                        assert!(
                            emitted.contains(r),
                            "workers={workers}: window {} closed at watermark {} \
                             but its result was not emitted",
                            r.window,
                            watermark.ticks(),
                        );
                    }
                }
            }
        }
        assert!(
            drains_with_output > 1,
            "workers={workers}: results must flow live, not only at finish()"
        );
        session.finish_into(&mut emitted);
        WindowResult::sort(&mut emitted);
        assert_eq!(emitted, expected, "workers={workers}");
    }
}

/// `.slack(n)` × `.workers(n)`: the reorderer sits in front of the shard
/// router, so late-event drop counts must not depend on the worker count,
/// and every event the reorderer releases must land on the shard its
/// group hashes to — proven by byte-identical results across counts.
#[test]
fn slack_late_drops_are_identical_across_worker_counts() {
    let (registry, events, query) = transport_setup();
    let mut shuffled = disorder(&events, 5);
    // Re-append the first 10 events at the end of the stream: their times
    // are far behind the watermark by then, so each is a guaranteed drop.
    shuffled.extend(events[..10].iter().cloned());

    let reference = Session::builder()
        .query(query.as_str())
        .slack(3)
        .build(&registry)
        .expect("session builds")
        .run(&shuffled);
    assert!(
        reference.late_events >= 10,
        "the stragglers must actually be dropped (got {})",
        reference.late_events
    );

    for workers in [1, 2, 4, 8] {
        let run = Session::builder()
            .query(query.as_str())
            .slack(3)
            .workers(workers)
            .build(&registry)
            .expect("session builds")
            .run(&shuffled);
        assert_eq!(
            run.late_events, reference.late_events,
            "workers={workers}: late-drop count depends on worker count"
        );
        assert_eq!(
            run.per_query, reference.per_query,
            "workers={workers}: a released late event landed on the wrong shard"
        );
    }
}

#[test]
fn slack_composes_with_workers() {
    let (registry, events, query) = transport_setup();
    let shuffled = disorder(&events, 4);
    let streaming = Session::builder()
        .query(query.as_str())
        .slack(10)
        .build(&registry)
        .expect("session builds")
        .run(&shuffled);
    let sharded = Session::builder()
        .query(query.as_str())
        .slack(10)
        .workers(4)
        .build(&registry)
        .expect("session builds")
        .run(&shuffled);
    assert_eq!(sharded.per_query, streaming.per_query);
    assert_eq!(sharded.late_events, streaming.late_events);
}
