//! Differential battery for the multi-query sharing pass: a session built
//! with sharing (the default) must be observationally identical to the
//! same roster with `.sharing(false)` — byte-identical per-query results,
//! identical late-drop counts, and sane routing stats — across workloads,
//! worker counts and slack settings. Sharing is an *optimization*; this
//! battery is the proof that it is never a *semantic* one.

use cogra::prelude::*;
use cogra::workloads::{activity, rideshare, stock, ActivityConfig, RideshareConfig, StockConfig};

/// One battery case: a roster of queries over a workload.
struct Case {
    name: &'static str,
    registry: TypeRegistry,
    events: Vec<Event>,
    queries: Vec<String>,
    /// The physical run count the roster must collapse to under sharing.
    physical: usize,
}

fn cases() -> Vec<Case> {
    let stock_events = stock::generate(&StockConfig {
        events: 240,
        ..Default::default()
    });
    let rideshare_events = rideshare::generate(&RideshareConfig {
        events: 400,
        ..Default::default()
    });
    let activity_events = activity::generate(&ActivityConfig {
        events: 300,
        ..Default::default()
    });
    // A renamed-variable duplicate of activity q1: textually different,
    // same canonical signature — the healthcare-style duplicate roster.
    let q1 = activity::q1_query(60, 30);
    let q1_renamed = q1
        .replace("Measurement M+", "Measurement R+")
        .replace("NEXT(M)", "NEXT(R)")
        .replace("M.", "R.");
    assert_ne!(q1, q1_renamed);
    vec![
        Case {
            name: "stock",
            registry: stock::registry(),
            events: stock_events,
            // Two distinct queries plus a duplicate of the first.
            queries: vec![
                stock::q3_query_no_adjacent(60, 30),
                stock::selectivity_query(60, 30),
                stock::q3_query_no_adjacent(60, 30),
            ],
            physical: 2,
        },
        Case {
            name: "rideshare",
            registry: rideshare::registry(),
            events: rideshare_events,
            queries: vec![rideshare::q2_query(120, 60), rideshare::q2_query(120, 60)],
            physical: 1,
        },
        Case {
            name: "healthcare-duplicates",
            registry: activity::registry(),
            events: activity_events,
            queries: vec![q1.clone(), q1_renamed, q1],
            physical: 1,
        },
    ]
}

/// Deterministically disorder a stream: reverse blocks of `block` events.
fn disorder(events: &[Event], block: usize) -> Vec<Event> {
    let mut out = Vec::with_capacity(events.len());
    for chunk in events.chunks(block) {
        out.extend(chunk.iter().rev().cloned());
    }
    out
}

fn build(case: &Case, workers: usize, slack: u64, sharing: bool) -> Session {
    let mut b = Session::builder();
    for q in &case.queries {
        b = b.query(q.as_str());
    }
    if workers > 1 {
        b = b.workers(workers);
    }
    if slack > 0 {
        b = b.slack(slack);
    }
    b.sharing(sharing)
        .build(&case.registry)
        .expect("session builds")
}

#[test]
fn shared_and_unshared_sessions_are_byte_identical() {
    for case in cases() {
        for workers in [1, 4] {
            for slack in [0, 8] {
                let stream = if slack > 0 {
                    disorder(&case.events, 5)
                } else {
                    case.events.clone()
                };
                let shared = build(&case, workers, slack, true).run(&stream);
                let unshared = build(&case, workers, slack, false).run(&stream);
                let label = format!("{} workers={workers} slack={slack}", case.name);

                assert_eq!(
                    shared.physical, case.physical,
                    "{label}: sharing must collapse the roster"
                );
                assert_eq!(unshared.physical, case.queries.len(), "{label}");
                assert_eq!(shared.per_query, unshared.per_query, "{label}: results");
                assert!(
                    shared.per_query.iter().any(|r| !r.is_empty()),
                    "{label}: the workload must actually produce results"
                );
                assert_eq!(
                    shared.late_events, unshared.late_events,
                    "{label}: late drops"
                );
                assert_eq!(shared.events, unshared.events, "{label}: ingest counts");
                // RunStats invariants: every alloc comes from a probe, and
                // the shared session probes strictly less on a collapsed
                // roster (fewer engines see the stream).
                assert!(
                    shared.stats.key_allocs <= shared.stats.key_probes,
                    "{label}: allocs exceed probes"
                );
                if shared.stats.key_probes > 0 {
                    assert!(
                        shared.stats.key_probes < unshared.stats.key_probes,
                        "{label}: a collapsed roster must probe less \
                         (shared {} vs unshared {})",
                        shared.stats.key_probes,
                        unshared.stats.key_probes
                    );
                }
            }
        }
    }
}

/// Checkpoint a shared session mid-stream, restore, finish — the restored
/// session re-derives the fan-out from the stored sharing map and stays
/// byte-identical to the uninterrupted unshared run.
#[test]
fn shared_checkpoint_restore_matches_unshared_run() {
    for case in cases() {
        for restore_workers in [1, 4] {
            let expected = build(&case, 1, 0, false).run(&case.events);

            let split = case.events.len() / 2;
            let mut session = build(&case, 1, 0, true);
            let mut collected: Vec<TaggedResult> = Vec::new();
            for e in &case.events[..split] {
                session.process(e);
                session.drain_into(&mut collected);
            }
            let mut snap = Vec::new();
            session.checkpoint(&mut snap).expect("checkpoint");
            drop(session);

            let mut restored = Session::builder()
                .workers(restore_workers)
                .restore(&case.registry, snap.as_slice())
                .expect("restore");
            assert_eq!(
                restored.physical_runs(),
                case.physical,
                "{}: restore must keep the factoring",
                case.name
            );
            for e in &case.events[split..] {
                restored.process(e);
                restored.drain_into(&mut collected);
            }
            restored.finish_into(&mut collected);

            let mut per_query: Vec<Vec<WindowResult>> = vec![Vec::new(); case.queries.len()];
            for t in collected {
                per_query[t.query].push(t.result);
            }
            for results in &mut per_query {
                WindowResult::sort(results);
            }
            assert_eq!(
                per_query, expected.per_query,
                "{} restore_workers={restore_workers}",
                case.name
            );
        }
    }
}
