//! Regression tests for disjunct double-counting (§8 rewrite).
//!
//! Surface patterns expand into a disjunction of core patterns, and
//! disjunct aggregates combine by SUM for COUNT/SUM. Before the structural
//! dedup in `to_disjuncts`, `SEQ(A?, A?)` emitted the disjunct `A` twice,
//! so every single-event trend was counted twice; `OR` with repeated arms
//! double-counted every trend of the repeated alternative. Each test below
//! pins the aggregate values against a hand-computed reference.

use cogra::core::run_to_completion;
use cogra::prelude::*;

fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    r.register_type("A", vec![("v", ValueKind::Int)]);
    r
}

/// Three `A` events at t = 1, 2, 3 with v = 10, 20, 30.
fn three_events(b: &mut EventBuilder) -> Vec<Event> {
    let reg = registry();
    let a = reg.id_of("A").unwrap();
    vec![
        b.event(1, a, vec![Value::Int(10)]),
        b.event(2, a, vec![Value::Int(20)]),
        b.event(3, a, vec![Value::Int(30)]),
    ]
}

fn run(query: &str) -> Vec<WindowResult> {
    let reg = registry();
    let mut engine = CograEngine::from_text(query, &reg).unwrap();
    let mut b = EventBuilder::new();
    let events = three_events(&mut b);
    let (results, _) = run_to_completion(&mut engine, &events, 1);
    results
}

#[test]
fn or_with_repeated_arms_counts_each_trend_once() {
    // OR(A, A) ≡ A: each of the three events is one single-event trend.
    // Before the dedup both identical arms compiled and their SUM-combined
    // aggregates counted every trend twice (COUNT 6, SUM 120).
    let results =
        run("RETURN COUNT(*), SUM(A.v) PATTERN OR(A, A) SEMANTICS ANY WITHIN 10 SLIDE 10");
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].values[0], AggValue::Count(3));
    assert_eq!(results[0].values[1], AggValue::Float(60.0));
}

#[test]
fn repeated_optional_counts_match_hand_reference() {
    // SEQ(A?, A?) = SEQ(A, A) ∨ A (after dedup; ε is dropped).
    //   disjunct A:         trends {e1}, {e2}, {e3}            → 3 trends
    //   disjunct SEQ(A, A): ordered pairs (e1,e2) (e1,e3) (e2,e3) → 3 trends
    // COUNT(*) = 6. SUM(A.v): singles contribute 10+20+30 = 60; each event
    // sits in exactly two pairs, so pairs contribute 2·60 = 120; total 180.
    // The duplicated `A` disjunct would have added 3 to COUNT and 60 to SUM.
    let results =
        run("RETURN COUNT(*), SUM(A.v) PATTERN SEQ(A?, A?) SEMANTICS ANY WITHIN 10 SLIDE 10");
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].values[0], AggValue::Count(6));
    assert_eq!(results[0].values[1], AggValue::Float(180.0));
}

#[test]
fn repeated_star_counts_match_hand_reference() {
    // SEQ(A*, A*) = SEQ(A+, A+) ∨ A+ (after dedup; ε is dropped).
    //   disjunct A+: every non-empty subsequence of {e1,e2,e3} → 2³−1 = 7
    //   disjunct SEQ(A+, A+): an increasing sequence of k ≥ 2 events with a
    //   split point; k=2 → 3 sequences × 1 split, k=3 → 1 sequence × 2
    //   splits → 5 trends.
    // COUNT(*) = 12; the duplicate A+ would have made it 19.
    let results = run("RETURN COUNT(*) PATTERN SEQ(A*, A*) SEMANTICS ANY WITHIN 10 SLIDE 10");
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].values[0], AggValue::Count(12));
}

#[test]
fn repeated_optional_min_max_are_unaffected_by_dedup() {
    // MIN/MAX combine by min/max across disjuncts, so duplicates never
    // changed them — pin them anyway to lock the full aggregate row.
    let results = run("RETURN COUNT(*), MIN(A.v), MAX(A.v) PATTERN SEQ(A?, A?) \
         SEMANTICS ANY WITHIN 10 SLIDE 10");
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].values[1], AggValue::Float(10.0));
    assert_eq!(results[0].values[2], AggValue::Float(30.0));
}
