//! Offline stand-in for the `criterion` crate.
//!
//! Provides the benchmark-group API surface the workspace's bench targets
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock timer
//! (median of the sampled iterations) instead of criterion's statistics
//! engine. Good enough to compare engines by eye and to keep `cargo bench`
//! working without network access.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier from the swept parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }

    /// Identifier from a function name and a parameter.
    pub fn new(function: impl fmt::Display, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{param}"))
    }
}

/// Timer handed to the measured closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` `sample_size` times, timing each run.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warm-up iteration outside the timing loop.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark over `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.samples.sort();
        let median = bencher
            .samples
            .get(bencher.samples.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        let mean = bencher
            .samples
            .iter()
            .sum::<Duration>()
            .checked_div(bencher.samples.len() as u32)
            .unwrap_or(Duration::ZERO);
        println!(
            "{}/{}: median {:>12?}  mean {:>12?}  ({} samples)",
            self.name,
            id.0,
            median,
            mean,
            bencher.samples.len()
        );
        self.criterion.benchmarks_run += 1;
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Entry point handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// Collect bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($bench(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_with_input(BenchmarkId::from_parameter("x"), &5u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u64>()
            })
        });
        g.finish();
        assert_eq!(runs, 4, "warm-up + 3 samples");
        assert_eq!(c.benchmarks_run, 1);
    }
}
