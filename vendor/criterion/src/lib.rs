//! Offline stand-in for the `criterion` crate.
//!
//! Provides the benchmark-group API surface the workspace's bench targets
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock timer
//! (median of the sampled iterations) instead of criterion's statistics
//! engine. Good enough to compare engines by eye and to keep `cargo bench`
//! working without network access.
//!
//! ## Machine-readable output
//!
//! `cargo bench -p <crate> -- --csv <path>` writes every measurement as a
//! CSV row (`group,benchmark,median_ns,mean_ns,samples`) besides the
//! console report, so figure data can be regenerated and diffed against
//! the checked-in `BENCH_*.json` trajectory. [`criterion_main!`]
//! truncates the file and writes the header once at startup; each
//! measurement appends.

#![warn(missing_docs)]

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// The `--csv <path>` / `--csv=<path>` benchmark argument, if present.
/// Unknown arguments (e.g. the `--bench` flag cargo appends) are ignored.
pub fn csv_path_from_args() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--csv" {
            return Some(args.next().expect("--csv needs a path"));
        }
        if let Some(p) = a.strip_prefix("--csv=") {
            return Some(p.to_string());
        }
    }
    None
}

/// Initialize `--csv` output: truncate the file and write the header.
/// Called once by the [`criterion_main!`]-generated `main`; a no-op
/// without the flag.
///
/// Assumes one bench binary per `cargo bench` invocation shares the CSV
/// path: each binary truncates at startup, so point multiple `[[bench]]`
/// targets at *different* paths if more are ever added.
pub fn csv_init() {
    if let Some(path) = csv_path_from_args() {
        std::fs::write(&path, "group,benchmark,median_ns,mean_ns,samples\n")
            .unwrap_or_else(|e| panic!("--csv {path}: {e}"));
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier from the swept parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }

    /// Identifier from a function name and a parameter.
    pub fn new(function: impl fmt::Display, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{param}"))
    }
}

/// Timer handed to the measured closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` `sample_size` times, timing each run.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warm-up iteration outside the timing loop.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark over `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.samples.sort();
        let median = bencher
            .samples
            .get(bencher.samples.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        let mean = bencher
            .samples
            .iter()
            .sum::<Duration>()
            .checked_div(bencher.samples.len() as u32)
            .unwrap_or(Duration::ZERO);
        println!(
            "{}/{}: median {:>12?}  mean {:>12?}  ({} samples)",
            self.name,
            id.0,
            median,
            mean,
            bencher.samples.len()
        );
        if let Some(path) = &self.criterion.csv {
            let row = format!(
                "{},{},{},{},{}\n",
                self.name,
                id.0,
                median.as_nanos(),
                mean.as_nanos(),
                bencher.samples.len()
            );
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(row.as_bytes()))
                .unwrap_or_else(|e| panic!("--csv {path}: {e}"));
        }
        self.criterion.benchmarks_run += 1;
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Entry point handed to every bench function.
#[derive(Debug)]
pub struct Criterion {
    benchmarks_run: usize,
    /// CSV sink path (`--csv <path>`), appended to per measurement.
    csv: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            benchmarks_run: 0,
            csv: csv_path_from_args(),
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// Collect bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($bench(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups. Honours `--csv <path>`
/// (see the module docs): the file is truncated once here, then every
/// measurement appends a row.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::csv_init();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_with_input(BenchmarkId::from_parameter("x"), &5u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u64>()
            })
        });
        g.finish();
        assert_eq!(runs, 4, "warm-up + 3 samples");
        assert_eq!(c.benchmarks_run, 1);
    }

    #[test]
    fn csv_rows_append_per_measurement() {
        // Per-process file name: concurrent test runs must not collide.
        let path = std::env::temp_dir().join(format!(
            "criterion_standin_csv_test_{}.csv",
            std::process::id()
        ));
        std::fs::write(&path, "group,benchmark,median_ns,mean_ns,samples\n").unwrap();
        let mut c = Criterion {
            benchmarks_run: 0,
            csv: Some(path.to_string_lossy().into_owned()),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let mut lines = text.lines();
        assert_eq!(
            lines.next(),
            Some("group,benchmark,median_ns,mean_ns,samples")
        );
        let row = lines.next().expect("one measurement row");
        assert!(row.starts_with("g,x,"), "{row}");
        assert!(row.ends_with(",2"), "{row}");
        assert_eq!(lines.next(), None);
    }
}
