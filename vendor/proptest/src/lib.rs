//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendored crate
//! re-implements the slice of proptest's API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, range / tuple / [`collection::vec`] strategies, the
//! [`prop_oneof!`] union macro, and the [`proptest!`] test-runner macro
//! with `prop_assert!`-style assertions.
//!
//! Differences from the real crate, by design:
//! * **minimal shrinking** — no lazy value trees; instead each strategy
//!   can propose smaller candidates for a failing value
//!   ([`Strategy::shrink`]) and the runner greedily re-tries them:
//!   halve-and-retry on `Vec` lengths and integer values, component-wise
//!   through tuples and `Vec` elements. Strategies whose structure is
//!   opaque after sampling (`prop_map`, `prop_oneof!`,
//!   `prop_recursive`, `any`) do not shrink — a reduced counterexample
//!   is reported alongside the original inputs whenever any part of the
//!   input *is* shrinkable;
//! * **deterministic** — the RNG seed is derived from the test name, so a
//!   failure reproduces on every run (no persistence files needed).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A test-case failure (what `prop_assert!` and friends return).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail the current case with a message.
    pub fn fail(message: impl fmt::Display) -> Self {
        TestCaseError(message.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG handed to strategies by the [`proptest!`] runner.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for a named test: the seed is a hash of the name, so the same
    /// test always sees the same input sequence.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.0.random_range(0..n.max(1))
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of random values (proptest's core abstraction, with
/// eager candidate lists in place of the shrinking value tree).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Propose *smaller* candidates for a failing `value`, best first.
    /// The runner re-runs the property on each candidate and greedily
    /// adopts any that still fails ([`__shrink`]). The default — for
    /// strategies whose structure is opaque after sampling — proposes
    /// nothing.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Recursive strategy: from this leaf strategy, `branch` builds the
    /// composite level given the strategy for sub-values. `depth` bounds
    /// the nesting; the other two parameters (desired size / expected
    /// branch size) are accepted for API compatibility and unused.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        Self::Value: 'static,
    {
        Recursive {
            base: self.boxed(),
            branch: Arc::new(move |inner| branch(inner).boxed()),
            depth,
        }
    }

    /// Type-erase into a cloneable trait object.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
    fn shrink_dyn(&self, value: &T) -> Vec<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
    fn shrink_dyn(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

/// Cloneable type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink_dyn(value)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    branch: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            branch: Arc::clone(&self.branch),
            depth: self.depth,
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        if self.depth == 0 || rng.below(4) == 0 {
            // Bottom out — always at depth 0, and with probability 1/4
            // earlier so sampled sizes vary.
            return self.base.sample(rng);
        }
        let inner = Recursive {
            base: self.base.clone(),
            branch: Arc::clone(&self.branch),
            depth: self.depth - 1,
        };
        (self.branch)(inner.boxed()).sample(rng)
    }
}

/// Weighted union of strategies (what [`prop_oneof!`] builds).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Union over weighted, already-boxed arms. Panics if empty or all
    /// weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight bookkeeping")
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
            /// Halve-and-retry toward the range start: `start`, the
            /// midpoint, and `value - 1` (exact-boundary convergence).
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (start, v) = (self.start, *value);
                if v <= start {
                    return Vec::new();
                }
                let mid = match v.checked_sub(start) {
                    Some(d) => start + d / 2,
                    None => v, // span overflows the type: skip the midpoint
                };
                let mut out = Vec::new();
                for c in [start, mid, v - 1] {
                    if c < v && c >= start && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone,)+
        {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
            /// Component-wise: each candidate shrinks exactly one
            /// position, holding the others fixed.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for c in self.$idx.shrink(&value.$idx) {
                        let mut candidate = value.clone();
                        candidate.$idx = c;
                        out.push(candidate);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Sample one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().random()
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, i8, i16, i32, i64);

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: each sampled vector has a length uniform in `len`
    /// and elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
        /// Length first — halve (front and back halves), then drop one
        /// element from either end — then element-wise shrinks over a
        /// bounded prefix. Never proposes a length below `len.start`.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            let min = self.len.start;
            let n = value.len();
            if n > min {
                let half = (n / 2).max(min);
                if half < n {
                    out.push(value[..half].to_vec());
                    out.push(value[n - half..].to_vec());
                }
                out.push(value[..n - 1].to_vec());
                out.push(value[1..].to_vec());
                out.retain(|c| c.len() != n);
            }
            // Element-wise, bounded so candidate lists stay small on
            // long vectors (the runner's attempt budget is global).
            for (i, elem) in value.iter().enumerate().take(16) {
                for c in self.elem.shrink(elem) {
                    let mut candidate = value.clone();
                    candidate[i] = c;
                    out.push(candidate);
                }
            }
            out
        }
    }
}

/// Pin a property closure's parameter type to `strategy`'s value type —
/// the closure literal gets its signature at the call site, so the
/// macro-generated body type-checks without naming the tuple type.
#[doc(hidden)]
pub fn __property_fn<S, F>(_strategy: &S, f: F) -> F
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    f
}

/// Run the property once, converting `prop_assert` failures *and*
/// panics (`assert!`, `unwrap`, ...) into an error message.
#[doc(hidden)]
pub fn __run_one<T, F>(run: &F, value: &T) -> Result<(), String>
where
    F: Fn(&T) -> Result<(), TestCaseError>,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(value))) {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => Err(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// What `std::panic::take_hook` returns.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

/// Silence the default panic hook for the duration of a shrink search —
/// every still-failing candidate would otherwise print a full panic
/// report. Restored on drop.
struct QuietPanics {
    prev: Option<PanicHook>,
}

impl QuietPanics {
    fn new() -> QuietPanics {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics { prev: Some(prev) }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

/// Greedy shrink loop: repeatedly ask the strategy for smaller
/// candidates of the current counterexample and adopt the first that
/// still fails, until a fixpoint or the attempt `budget` runs out.
/// Returns `(minimized value, its failure message, shrink steps taken)`.
#[doc(hidden)]
pub fn __shrink<S, F>(
    strategy: &S,
    value: S::Value,
    message: String,
    run: &F,
    budget: usize,
) -> (S::Value, String, usize)
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    let _quiet = QuietPanics::new();
    let mut current = value;
    let mut message = message;
    let mut steps = 0usize;
    let mut attempts = 0usize;
    loop {
        let mut progressed = false;
        for candidate in strategy.shrink(&current) {
            if attempts >= budget {
                return (current, message, steps);
            }
            attempts += 1;
            if let Err(msg) = __run_one(run, &candidate) {
                current = candidate;
                message = msg;
                steps += 1;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return (current, message, steps);
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)+)
        );
    }};
}

/// Weighted (`3 => strat`) or uniform union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random inputs. On
/// failure the inputs are shrunk (halve-and-retry, [`__shrink`]) and the
/// reduced counterexample is reported next to the original.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            // All per-input strategies fuse into one tuple strategy so
            // sampling and shrinking see the whole input at once.
            let __strategy = ($($strat,)+);
            let __run = $crate::__property_fn(&__strategy, |__vals| {
                let ($($pat,)+) = ::std::clone::Clone::clone(__vals);
                $body
                ::std::result::Result::Ok(())
            });
            for __case in 0..__config.cases {
                let __value = $crate::Strategy::sample(&__strategy, &mut __rng);
                if let ::std::result::Result::Err(__msg) = $crate::__run_one(&__run, &__value) {
                    let __original = format!("{:?}", __value);
                    let (__min, __min_msg, __steps) =
                        $crate::__shrink(&__strategy, __value, __msg, &__run, 512);
                    panic!(
                        "property failed at case {}/{}: {}\n\
                         minimized counterexample ({} shrink step(s)):\n  {:?}\n\
                         original inputs:\n  {}",
                        __case + 1,
                        __config.cases,
                        __min_msg,
                        __steps,
                        __min,
                        __original,
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let mut c = crate::TestRng::for_test("y");
        let va: Vec<u64> = (0..8).map(|_| a.below(1000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.below(1000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.below(1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn union_respects_weights_loosely() {
        let s = prop_oneof![9 => 0u8..1, 1 => 1u8..2];
        let mut rng = crate::TestRng::for_test("weights");
        let ones = (0..1000).filter(|_| s.sample(&mut rng) == 1).count();
        assert!((50..200).contains(&ones), "{ones}");
    }

    #[test]
    fn shrinking_reduces_vec_and_int_counterexamples() {
        // Property: fails iff the vec has ≥ 3 elements AND x ≥ 10. The
        // minimal counterexample is (len 3, x = 10); the greedy
        // halve-and-retry loop must land exactly there (the `v - 1` /
        // drop-one candidates give boundary convergence).
        let strategy = (crate::collection::vec(0u64..1000, 0..60), 0u64..1000);
        let run = |v: &(Vec<u64>, u64)| -> Result<(), TestCaseError> {
            if v.0.len() >= 3 && v.1 >= 10 {
                Err(TestCaseError::fail("boom"))
            } else {
                Ok(())
            }
        };
        let mut rng = crate::TestRng::for_test("shrink-demo");
        let failing = loop {
            let v = crate::Strategy::sample(&strategy, &mut rng);
            if crate::__run_one(&run, &v).is_err() {
                break v;
            }
        };
        let (min, msg, steps) = crate::__shrink(&strategy, failing, "boom".into(), &run, 4096);
        assert_eq!(min.0.len(), 3, "vec length minimized: {min:?}");
        assert_eq!(min.1, 10, "int minimized to the boundary: {min:?}");
        assert_eq!(msg, "boom");
        assert!(steps > 0, "shrinking actually ran");
    }

    #[test]
    fn shrinking_respects_range_and_length_floors() {
        // Everything fails ⇒ shrink to the floors, never below them.
        let strategy = (crate::collection::vec(5u8..9, 2..40), 3i64..90);
        let always = |_: &(Vec<u8>, i64)| -> Result<(), TestCaseError> {
            Err(TestCaseError::fail("always"))
        };
        let mut rng = crate::TestRng::for_test("shrink-floors");
        let start = crate::Strategy::sample(&strategy, &mut rng);
        let (min, _, _) = crate::__shrink(&strategy, start, "always".into(), &always, 4096);
        assert_eq!(min.0.len(), 2, "{min:?}");
        assert!(min.0.iter().all(|&x| x == 5), "{min:?}");
        assert_eq!(min.1, 3, "{min:?}");
    }

    #[test]
    fn shrink_candidates_stay_in_domain() {
        let r = 10u64..100;
        for c in crate::Strategy::shrink(&r, &57) {
            assert!((10..57).contains(&c), "{c}");
        }
        assert!(crate::Strategy::shrink(&r, &10).is_empty());
        let v = crate::collection::vec(0u8..4, 2..6);
        for c in crate::Strategy::shrink(&v, &vec![1, 2, 3, 0]) {
            assert!((2..6).contains(&c.len()), "{c:?}");
        }
    }

    // No #[test] meta: generated as a plain fn, driven via catch_unwind
    // below to inspect the failure report end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn failing_property_for_report_check(v in crate::collection::vec(0u32..50, 0..40)) {
            prop_assert!(v.len() < 4, "len {}", v.len());
        }
    }

    #[test]
    fn failure_report_carries_minimized_counterexample() {
        let payload = std::panic::catch_unwind(failing_property_for_report_check)
            .expect_err("property must fail");
        let message = payload
            .downcast_ref::<String>()
            .expect("panic message")
            .clone();
        assert!(message.contains("property failed at case"), "{message}");
        assert!(message.contains("minimized counterexample"), "{message}");
        assert!(message.contains("original inputs"), "{message}");
        // The minimal failing vec has exactly 4 elements, each shrunk
        // to 0 — the report's first line must carry that reduced case.
        assert!(message.contains("len 4"), "{message}");
        assert!(message.contains("([0, 0, 0, 0],)"), "{message}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u8..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()), "len {}", v.len());
            for x in &v {
                prop_assert!(*x < 10);
            }
        }

        #[test]
        fn tuples_and_any(t in (0i64..4, any::<bool>(), 1usize..3)) {
            prop_assert!((0..4).contains(&t.0));
            prop_assert!(t.2 == 1 || t.2 == 2);
        }

        #[test]
        fn recursive_bottoms_out(n in (1u32..3).prop_recursive(3, 8, 2, |inner| {
            inner.prop_map(|x| x + 10)
        })) {
            // depth <= 3 applications of +10 over a base in 1..3.
            prop_assert!(n <= 32, "{n}");
        }
    }
}
