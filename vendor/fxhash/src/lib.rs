//! Offline stand-in for the `fxhash` / `rustc-hash` crates.
//!
//! The build environment has no network access, so — like the vendored
//! `rand`, `proptest` and `criterion` stand-ins — this crate provides the
//! small slice of the fxhash API the workspace uses: [`FxHasher`] (the
//! multiply-rotate hash Firefox and rustc use for their internal tables),
//! the [`FxBuildHasher`] state, and the [`FxHashMap`] / [`FxHashSet`]
//! aliases.
//!
//! Why not SipHash (std's default)? SipHash is keyed and DoS-resistant,
//! which COGRA's hot routing maps do not need: partition keys come from a
//! declared schema, not an adversary, and the per-event budget (§7 of the
//! paper promises constant time per event) is dominated by hashing. Fx
//! hashes a word per multiply-rotate — several times faster on the short
//! keys (one or two attribute values) the router probes with. It is
//! **not** cryptographically secure and makes no inter-version stability
//! promise beyond this vendored copy, which never changes between builds
//! (determinism is load-bearing: shard placement derives from these
//! hashes).

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier: 2^64 / φ, the 64-bit Fibonacci hashing constant.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Rotation distance, as in the Firefox original.
const ROTATE: u32 = 5;

/// The Fx (Firefox) hasher: one rotate, one xor, one multiply per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// Fold one 64-bit word into the state.
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (word, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(word.try_into().unwrap()));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (word, rest) = bytes.split_at(4);
            self.add_to_hash(u32::from_le_bytes(word.try_into().unwrap()) as u64);
            bytes = rest;
        }
        for &b in bytes {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }
}

/// [`std::hash::BuildHasher`] producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`HashMap`] using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A [`HashSet`] using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hash one value with [`FxHasher`] — convenience for one-shot hashes.
#[inline]
pub fn hash64<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash64(&42u64), hash64(&42u64));
        assert_eq!(hash64("partition"), hash64("partition"));
        assert_ne!(hash64(&1u64), hash64(&2u64));
    }

    #[test]
    fn byte_stream_chunking_is_consistent() {
        // One write of 13 bytes must equal the same bytes in one call —
        // (not necessarily equal to split writes; fx makes no such
        // promise) — and produce a stable value.
        let bytes = b"thirteen-byte";
        let mut a = FxHasher::default();
        a.write(bytes);
        let mut b = FxHasher::default();
        b.write(bytes);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<&str, i32> = FxHashMap::default();
        m.insert("a", 1);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn zero_word_still_advances_nonzero_state() {
        // Fx famously maps the all-zero prefix to 0 (0 rot^xor 0 * SEED);
        // what matters for key hashing is that a zero word folded into a
        // *nonzero* state still changes it, so `[1, 0]` ≠ `[1]`.
        let mut h = FxHasher::default();
        h.write_u64(1);
        let one = h.finish();
        h.write_u64(0);
        assert_ne!(one, h.finish());
    }
}
