//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the small slice of the `rand` API the workspace uses — a
//! seedable deterministic generator ([`rngs::StdRng`]), the [`SeedableRng`]
//! constructor trait and the [`RngExt`] sampling extension — with the same
//! call syntax (`rng.random::<f64>()`, `rng.random_range(0..n)`).
//!
//! Determinism is part of the contract: the workload generators document
//! that their output is reproducible under a seed, so the generator here is
//! a fixed xoshiro256** seeded through SplitMix64 and will never change
//! between builds.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    ///
    /// Not cryptographically secure — none of the workloads need that.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Next raw 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits.
pub trait Standard: Sized {
    /// Sample one value.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    #[inline]
    fn sample(rng: &mut rngs::StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can be drawn uniformly from a range (drives the literal
/// type inference in `rng.random_range(0..n)`, like rand's homonym).
pub trait SampleUniform: Sized + Copy {
    /// Uniform in `[lo, hi)`; panics when empty.
    fn sample_half_open(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self;
    /// Uniform in `[lo, hi]`; panics when empty.
    fn sample_inclusive(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self;
}

/// Rejection-free-enough uniform integer in `[0, span)` (Lemire-style
/// widening multiply; the tiny modulo bias of plain `% span` is avoided).
#[inline]
fn uniform_below(rng: &mut rngs::StdRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(rng: &mut rngs::StdRng, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
            #[inline]
            fn sample_inclusive(rng: &mut rngs::StdRng, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open(rng: &mut rngs::StdRng, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
    #[inline]
    fn sample_inclusive(rng: &mut rngs::StdRng, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges that can be sampled uniformly, producing `T`.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range. Panics when empty.
    fn sample_from(self, rng: &mut rngs::StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut rngs::StdRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from(self, rng: &mut rngs::StdRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Sampling extension methods (the crate's analogue of rand's `Rng`).
pub trait RngExt {
    /// Sample a value of type `T` from its standard distribution
    /// (`bool`: fair coin, `f64`: uniform `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T;

    /// Sample uniformly from a range; panics if the range is empty.
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl RngExt for rngs::StdRng {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
            let p: f64 = rng.random();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn distribution_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..1000).filter(|_| rng.random::<bool>()).count();
        assert!((400..600).contains(&heads), "{heads}");
        let spread: std::collections::HashSet<u64> =
            (0..100).map(|_| rng.random_range(0..10u64)).collect();
        assert_eq!(spread.len(), 10);
    }
}
