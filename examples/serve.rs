//! Serving a session over the network (`cargo run --example serve`).
//!
//! Spins up the `cogra-server` TCP front-end on a loopback socket,
//! subscribes to its results, replays a small stock stream through the
//! wire protocol, and drains mid-stream — results arrive *while the
//! stream is still flowing*, pushed as windows close, exactly like the
//! in-process `ResultSink` path the battery pins it against.

use cogra::prelude::*;
use cogra::workloads::{stock, StockConfig};

fn main() {
    // A session like any other: q3 over the stock stream, two shards.
    let registry = stock::registry();
    let builder = Session::builder().query(stock::q3_query(60, 30)).workers(2);

    // Serve it. Port 0 = ephemeral; the server refuses non-loopback
    // addresses unless explicitly allowed (no TLS/auth yet).
    let server = Server::spawn(builder, registry, "127.0.0.1:0", ServerConfig::default())
        .expect("server starts");
    let addr = server.local_addr();
    println!("serving on {addr}");

    // One connection subscribes to every query's results...
    let subscription = Client::connect(addr)
        .expect("connect")
        .subscribe(None)
        .expect("subscribe io")
        .expect("subscribe accepted");
    let printer = std::thread::spawn(move || {
        let mut n = 0u32;
        for item in subscription {
            let (query, row) = item.expect("result line");
            println!("  q{query}: {row}");
            n += 1;
        }
        n
    });

    // ...while another replays a recorded CSV stream, in blocks, through
    // the same cogra_events::csv decode path the CLI uses.
    let events = stock::generate(&StockConfig {
        events: 200,
        ..StockConfig::default()
    });
    let csv = write_events(&events, &stock::registry());
    let mut feed = Client::connect(addr).expect("connect");
    feed.replay_csv(&csv, 50)
        .expect("replay io")
        .expect("replay accepted");

    let mid = feed.drain().expect("drain io").expect("drain accepted");
    println!(
        "mid-stream: {} events in, watermark t{}, {} results pushed so far",
        mid.events, mid.watermark, mid.results
    );

    let done = feed.finish().expect("finish io").expect("finish accepted");
    let pushed = printer.join().expect("printer joins");
    println!(
        "finished: {} events → {} results over the wire ({} worker(s))",
        done.events, pushed, done.workers
    );
    server.shutdown();
}
