//! Algorithmic trading (§1, query q3): down-trends followed by a tracked
//! stock, under skip-till-any-match with a predicate on adjacent events —
//! the query class that forces COGRA's *mixed* granularity (Table 4).
//!
//! Also shows the §8 parallel per-partition execution: the same query run
//! through a 1-worker and an 8-worker [`Session`], with identical results.
//!
//! Run: `cargo run --release --example trading`

use cogra::prelude::*;
use cogra::workloads::stock::{self, StockConfig};
use std::time::Instant;

fn main() {
    let registry = stock::registry();
    let config = StockConfig {
        events: 15_000,
        down_prob: 0.55,
        ..Default::default()
    };
    let events = stock::generate(&config);
    let query_text = stock::q3_query(600, 10); // 10 min / 10 s
    println!("q3:\n  {}\n", query_text.replace(" PATTERN", "\n  PATTERN"));

    let query = parse(&query_text).expect("q3 parses");
    let compiled = compile(&query, &registry).expect("q3 compiles");

    // The static analyzer at work: ANY + adjacent predicate ⇒ mixed
    // granularity, with the Kleene variable A event-grained (it is the
    // predecessor side of `A.price > NEXT(A).price`) and B type-grained.
    let disjunct = &compiled.disjuncts[0];
    let a = disjunct.automaton.state_of_var("A").unwrap();
    let b = disjunct.automaton.state_of_var("B").unwrap();
    println!(
        "granularity: {} (A event-grained: {}, B event-grained: {})",
        compiled.granularity(),
        disjunct.event_grained[a.index()],
        disjunct.event_grained[b.index()],
    );

    let start = Instant::now();
    let sequential = Session::builder()
        .query(&query)
        .build(&registry)
        .expect("session builds")
        .run(&events);
    let seq_elapsed = start.elapsed();
    let start = Instant::now();
    let parallel = Session::builder()
        .query(&query)
        .workers(8)
        .build(&registry)
        .expect("session builds")
        .run(&events);
    let par_elapsed = start.elapsed();

    assert_eq!(sequential.per_query, parallel.per_query);
    println!(
        "{} events → {} (window, company) results",
        events.len(),
        sequential.results().len()
    );
    println!(
        "1 worker: {:.1} ms   {} workers: {:.1} ms (identical results)",
        seq_elapsed.as_secs_f64() * 1e3,
        parallel.workers,
        par_elapsed.as_secs_f64() * 1e3,
    );

    // Sample: average price of the follower trend B per company.
    for r in sequential.results().iter().take(5) {
        println!(
            "  window {:>3} company {:>2}: {} down-trend continuations, avg follower price {}",
            r.window.0, r.group[0], r.values[0], r.values[1]
        );
    }
}
