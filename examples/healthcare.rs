//! Health care analytics (§1, query q1): cardiac arrhythmia screening.
//!
//! Detects contiguously increasing heart-rate runs during passive
//! physical activities per patient, over a 10-minute window sliding every
//! 30 seconds, and reports the minimal and maximal rate of those runs —
//! the paper's query q1 verbatim, on the synthetic PAMAP2 stand-in.
//!
//! The session is heterogeneous: q1 runs on COGRA while a trend-count
//! cross-check of the same pattern runs on SASE
//! (`SessionBuilder::query_with_engine`) — one stream, one ingestion
//! pass, each query on the engine that suits it.
//!
//! Run: `cargo run --release --example healthcare`

use cogra::prelude::*;
use cogra::workloads::activity::{self, ActivityConfig};

fn main() {
    let registry = activity::registry();
    let config = ActivityConfig {
        events: 20_000,
        up_prob: 0.68, // pronounced resting-heart-rate ramps
        ..Default::default()
    };
    let events = activity::generate(&config);
    let q1 = activity::q1_query(600, 30); // 10 min / 30 s
    let count_q = activity::contiguous_count_query(600, 30);
    println!("q1:\n  {}\n", q1.replace(" PATTERN", "\n  PATTERN"));

    let session = Session::builder()
        .query(q1.as_str()) // default engine: COGRA
        .query_with_engine(count_q.as_str(), EngineKind::Sase)
        .build(&registry)
        .expect("session builds");

    // q1 runs under the contiguous semantics → the granularity selector
    // must pick the pattern-grained aggregator (Table 4). The compiled
    // plan is inspectable on the session itself — no re-compilation.
    let plan = session.plan(0).expect("q1 is registered");
    assert_eq!(plan.granularity(), Granularity::Pattern);
    println!(
        "q1 plan: granularity {}, window {} slide {}; engines: {} + {}",
        plan.granularity(),
        plan.window.within,
        plan.window.slide,
        session.query_kind(0).unwrap(),
        session.query_kind(1).unwrap(),
    );

    let run = session.run(&events);
    println!(
        "{} events → {} (window, patient) results; peak memory {} bytes",
        events.len(),
        run.per_query[0].len(),
        run.peak_bytes
    );
    for r in run.results().iter().take(8) {
        println!(
            "  window {:>4}  patient {}  min rate {}  max rate {}",
            r.window.0, r.group[0], r.values[0], r.values[1]
        );
    }
    if run.results().len() > 8 {
        println!("  ... {} more", run.results().len() - 8);
    }

    // Alarm logic a downstream consumer would attach: resting heart rate
    // ramps ending above 120 bpm are worth a look.
    let alarms = run
        .results()
        .iter()
        .filter(|r| matches!(r.values[1], AggValue::Float(max) if max > 120.0))
        .count();
    println!("windows with suspicious ramps (max > 120 bpm): {alarms}");

    // The SASE-run cross-check: every (window, patient) group q1 flags
    // must also carry trends under the count query (same pattern, same
    // windows) — enforced, not just printed.
    let counted: std::collections::HashSet<_> = run.per_query[1]
        .iter()
        .map(|r| (r.window, r.group.clone()))
        .collect();
    let missing = run.per_query[0]
        .iter()
        .filter(|r| !counted.contains(&(r.window, r.group.clone())))
        .count();
    assert_eq!(missing, 0, "q1 flagged groups the SASE count query missed");
    println!(
        "sase cross-check: {} (window, patient) trend counts, every q1 group covered",
        run.per_query[1].len()
    );
}
