//! Health care analytics (§1, query q1): cardiac arrhythmia screening.
//!
//! Detects contiguously increasing heart-rate runs during passive
//! physical activities per patient, over a 10-minute window sliding every
//! 30 seconds, and reports the minimal and maximal rate of those runs —
//! the paper's query q1 verbatim, on the synthetic PAMAP2 stand-in.
//!
//! Run: `cargo run --release --example healthcare`

use cogra::prelude::*;
use cogra::workloads::activity::{self, ActivityConfig};

fn main() {
    let registry = activity::registry();
    let config = ActivityConfig {
        events: 20_000,
        up_prob: 0.68, // pronounced resting-heart-rate ramps
        ..Default::default()
    };
    let events = activity::generate(&config);
    let query_text = activity::q1_query(600, 30); // 10 min / 30 s
    println!("q1:\n  {}\n", query_text.replace(" PATTERN", "\n  PATTERN"));

    // q1 runs under the contiguous semantics → the granularity selector
    // must pick the pattern-grained aggregator (Table 4).
    let compiled =
        compile(&parse(&query_text).expect("q1 parses"), &registry).expect("q1 compiles");
    assert_eq!(compiled.granularity(), Granularity::Pattern);

    let run = Session::builder()
        .query(query_text.as_str())
        .build(&registry)
        .expect("session builds")
        .run(&events);
    println!(
        "{} events → {} (window, patient) results; peak memory {} bytes",
        events.len(),
        run.results().len(),
        run.peak_bytes
    );
    for r in run.results().iter().take(8) {
        println!(
            "  window {:>4}  patient {}  min rate {}  max rate {}",
            r.window.0, r.group[0], r.values[0], r.values[1]
        );
    }
    if run.results().len() > 8 {
        println!("  ... {} more", run.results().len() - 8);
    }

    // Alarm logic a downstream consumer would attach: resting heart rate
    // ramps ending above 120 bpm are worth a look.
    let alarms = run
        .results()
        .iter()
        .filter(|r| matches!(r.values[1], AggValue::Float(max) if max > 120.0))
        .count();
    println!("windows with suspicious ramps (max > 120 bpm): {alarms}");
}
