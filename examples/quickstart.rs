//! Quickstart: the paper's running example end to end.
//!
//! Evaluates the Kleene pattern `(SEQ(A+, B))+` (Figure 2) over the
//! stream `a1 b2 a3 a4 c5 b6 a7 b8` under all three event matching
//! semantics and prints the trend counts — 43 / 8 / 2, exactly the
//! numbers of Tables 5 and 7.
//!
//! Run: `cargo run --example quickstart`

use cogra::prelude::*;

fn main() {
    // Event schema: three types, one dummy attribute.
    let mut registry = TypeRegistry::new();
    let a = registry.register_type("A", vec![("v", ValueKind::Int)]);
    let b = registry.register_type("B", vec![("v", ValueKind::Int)]);
    let c = registry.register_type("C", vec![("v", ValueKind::Int)]);

    // The Figure 2 stream: letters are types, numbers are time stamps.
    let mut builder = EventBuilder::new();
    let stream: Vec<Event> = [
        (a, 1),
        (b, 2),
        (a, 3),
        (a, 4),
        (c, 5),
        (b, 6),
        (a, 7),
        (b, 8),
    ]
    .into_iter()
    .map(|(ty, t)| builder.event(t, ty, vec![Value::Int(t as i64)]))
    .collect();

    for semantics in ["skip-till-any-match", "skip-till-next-match", "contiguous"] {
        let query = format!(
            "RETURN COUNT(*) \
             PATTERN (SEQ(A+, B))+ \
             SEMANTICS {semantics} \
             WITHIN 100 SLIDE 100"
        );
        let session = Session::builder()
            .query(query.as_str())
            .engine(EngineKind::Cogra)
            .build(&registry)
            .expect("session builds");
        // The static analyzer picks the coarsest granularity the
        // semantics permits (Table 4) — the session exposes the compiled
        // plan, so no separate compile() pass is needed to report it.
        let plan = session.plan(0).expect("one query");
        println!("{semantics:>22}: granularity = {}", plan.granularity());
        let run = session.run(&stream);
        for r in run.results() {
            println!(
                "{:>22}  {} trends, peak memory {} bytes",
                "", r.values[0], run.peak_bytes
            );
        }
    }
}
