//! Ridesharing analytics (§1, query q2): completed Uber pool trips with
//! cancellations, per driver, under skip-till-next-match.
//!
//! Also demonstrates the paper's correctness criterion live: the online
//! COGRA result equals the two-step SASE result, at a fraction of the
//! memory — both engines selected through the same [`Session`] API.
//!
//! Run: `cargo run --release --example ridesharing`

use cogra::prelude::*;
use cogra::workloads::rideshare::{self, RideshareConfig};

fn main() {
    let registry = rideshare::registry();
    let config = RideshareConfig {
        drivers: 12,
        events: 30_000,
        ..Default::default()
    };
    let events = rideshare::generate(&config);
    let query_text = rideshare::q2_query(600, 30);
    println!("q2:\n  {}\n", query_text.replace(" PATTERN", "\n  PATTERN"));

    let run_with = |kind: EngineKind| {
        Session::builder()
            .query(query_text.as_str())
            .engine(kind)
            .build(&registry)
            .expect("q2 compiles on this engine")
            .run(&events)
    };
    let cogra = run_with(EngineKind::Cogra);
    let sase = run_with(EngineKind::Sase);

    assert_eq!(
        cogra.per_query, sase.per_query,
        "online COGRA must equal the two-step baseline"
    );
    println!(
        "{} events → {} (window, driver) trip counts; results identical to SASE",
        events.len(),
        cogra.results().len()
    );
    println!(
        "peak memory: COGRA {} bytes vs SASE {} bytes ({}x)",
        cogra.peak_bytes,
        sase.peak_bytes,
        sase.peak_bytes / cogra.peak_bytes.max(1)
    );

    // Busiest drivers of the first full window.
    if let Some(first_window) = cogra.results().first().map(|r| r.window) {
        let mut per_driver: Vec<_> = cogra
            .results()
            .iter()
            .filter(|r| r.window == first_window)
            .collect();
        per_driver.sort_by_key(|r| match r.values[0] {
            AggValue::Count(c) => std::cmp::Reverse(c),
            _ => std::cmp::Reverse(0),
        });
        println!("top drivers in window {}:", first_window.0);
        for r in per_driver.iter().take(5) {
            println!("  driver {} → {} pool trips", r.group[0], r.values[0]);
        }
    }
}
