//! The §8 language extensions and the supporting substrates, end to end:
//! negated sub-patterns, Kleene star / optional / disjunction rewrites,
//! minimal-trend-length unrolling, plan explanation with DOT export, CSV
//! event interchange, and bounded out-of-order repair fused into the
//! [`Session`] via `.slack(n)`.
//!
//! Run: `cargo run --example extensions`

use cogra::events::{read_events, write_events};
use cogra::prelude::*;
use cogra::query::{explain_text, rewrite, to_dot};

fn main() {
    let mut registry = TypeRegistry::new();
    let a = registry.register_type("Alert", vec![("node", ValueKind::Int)]);
    let m = registry.register_type("Maintenance", vec![("node", ValueKind::Int)]);
    let r = registry.register_type("Recovery", vec![("node", ValueKind::Int)]);

    // --- Negation: alert bursts that end in a recovery *without* a
    // maintenance action in between are the suspicious ones.
    let query_text = "RETURN node, COUNT(*) \
                      PATTERN SEQ(Alert A+, NOT Maintenance, Recovery R) \
                      SEMANTICS skip-till-any-match \
                      WHERE [node] GROUP-BY node \
                      WITHIN 100 SLIDE 100";
    println!(
        "== plan ==\n{}",
        explain_text(query_text, &registry).unwrap()
    );
    let compiled = compile(&parse(query_text).unwrap(), &registry).unwrap();
    println!("== automaton (Graphviz) ==\n{}", to_dot(&compiled));

    // A slightly disordered stream: node 1 recovers without maintenance,
    // node 2 had a maintenance action between its alerts and recovery.
    let mut builder = EventBuilder::new();
    let disordered = vec![
        builder.event(2, a, vec![Value::Int(1)]),
        builder.event(1, a, vec![Value::Int(2)]), // arrives late by 1 tick
        builder.event(3, a, vec![Value::Int(2)]),
        builder.event(5, m, vec![Value::Int(2)]),
        builder.event(4, a, vec![Value::Int(1)]), // late again
        builder.event(7, r, vec![Value::Int(1)]),
        builder.event(8, r, vec![Value::Int(2)]),
    ];

    // --- CSV round trip (what a recorded data set would look like).
    let csv = write_events(&disordered, &registry);
    println!("== CSV interchange ==\n{csv}");
    let replayed = read_events(&csv, &registry).expect("round trip");
    assert_eq!(replayed.len(), disordered.len());

    // --- Bounded reordering is fused into ingestion: `.slack(3)` repairs
    // the disorder before the engine sees the events and counts any event
    // too late to save.
    let run = Session::builder()
        .query(query_text)
        .slack(3)
        .build(&registry)
        .expect("session builds")
        .run(&replayed);
    println!(
        "session: {} results, {} late event(s) dropped",
        run.results().len(),
        run.late_events
    );
    println!("== results (alert bursts ending in unmaintained recovery) ==");
    for res in run.results() {
        println!(
            "  node {} → {} suspicious bursts",
            res.group[0], res.values[0]
        );
    }
    // Node 1: alerts at t=2,4 then recovery at 7 with no maintenance →
    // trends {a2}, {a4}, {a2,a4} each followed by r: 3. Node 2's recovery
    // is blocked by the maintenance event at t=5.
    assert_eq!(run.results().len(), 1);
    assert_eq!(run.results()[0].group, vec![Value::Int(1)]);

    // --- Kleene star / optional / disjunction expand into disjuncts.
    let sugar = parse(
        "RETURN COUNT(*) PATTERN SEQ(Alert A*, Recovery R?) SEMANTICS ANY WITHIN 10 SLIDE 10",
    )
    .unwrap();
    let disjuncts = rewrite::to_disjuncts(&sugar.pattern).unwrap();
    println!(
        "\nSEQ(Alert A*, Recovery R?) expands into {} disjuncts:",
        disjuncts.len()
    );
    for d in &disjuncts {
        println!("  {d}");
    }

    // --- Minimal trend length (§8): only bursts of >= 3 alerts.
    let long_bursts =
        rewrite::unroll_min_length(&parse(query_text).unwrap().pattern, "A", 3).unwrap();
    println!("\nA+ unrolled to minimum length 3: {long_bursts}");
}
